//! STC1 — the columnar binary container for trips and trained models.
//!
//! Text ingest re-parses floats point-by-point and a JSON model load walks
//! a DOM that grows with the corpus; at million-trip scale both dominate
//! wall-clock (ROADMAP item 1). STC1 replaces them with a flat container:
//!
//! ```text
//! offset  size  field
//! 0       4     magic "STC1"
//! 4       2     version (LE, = 1)
//! 6       2     kind    (LE, 1 = trips, 2 = model)
//! 8       4     section count n (LE)
//! 12      4     reserved (0)
//! 16      24*n  section table: tag u32, reserved u32, offset u64, len u64
//! ...           section payloads, each 8-byte aligned, zero-padded between
//! ```
//!
//! Every integer is little-endian; every `f64` is stored as its IEEE-754
//! bit pattern (`to_bits`), so values — including negative zero and subnormals
//! — round-trip exactly. Section offsets and lengths live up front and
//! payloads are 8-byte aligned, so a loader may `mmap` the file and slice
//! columns in place; the portable readers here copy instead (std-only, no
//! platform mmap), which is still one `read` plus `memcpy`-shaped column
//! scans rather than a per-character parse.
//!
//! **Trips** (`kind = 1`): latitudes and longitudes are contiguous `f64`
//! columns over all points of all trips; trip boundaries are a `u64`
//! prefix-sum offsets column (`n_trips + 1` entries, first 0, last
//! `n_points`); timestamps are a single varint stream — per trip, the
//! zigzag-encoded absolute first timestamp followed by zigzag-encoded
//! deltas. Deltas are *signed*, so defective (out-of-order) inputs survive
//! the round trip and reach the PR-4 sanitizer exactly as the lenient text
//! readers deliver them; the strict reader surfaces them as
//! [`TrajectoryError::OutOfOrderTimestamp`].
//!
//! **Models** (`kind = 2`): the [`HistoricalFeatureMap`] and
//! [`PopularRoutes`] are flattened to key-sorted rows through their
//! columnar boundaries ([`HistoricalFeatureMap::numeric_rows`],
//! [`PopularRoutes::to_parts`]); feature names are interned in a sorted
//! string table and referenced by `u32` index. Determinism argument: the
//! JSON encoding sorts every map at serialization time (`serde_vecmap`),
//! so rebuilding the maps from rows in any insertion order yields a model
//! whose `to_json` — and therefore every summary — is byte-identical to
//! the original's (DESIGN.md §16).
//!
//! Decoding never panics: structural corruption maps to a typed
//! [`StcError`], and allocation is bounded by actual section byte lengths,
//! never by counts read from the (possibly hostile) file.

use std::collections::HashMap;

use stmaker::TrainedModel;
use stmaker_geo::GeoPoint;
use stmaker_poi::LandmarkId;
use stmaker_routes::{HistoricalFeatureMap, PopularRouteConfig, PopularRoutes, PopularRoutesParts};
use stmaker_trajectory::{RawPoint, RawTrajectory, Timestamp, TrajectoryError};

/// File magic: the first four bytes of every STC1 artifact.
pub const STC_MAGIC: [u8; 4] = *b"STC1";
/// Container version this module reads and writes.
pub const STC_VERSION: u16 = 1;
/// `kind` value for trip containers.
pub const KIND_TRIPS: u16 = 1;
/// `kind` value for trained-model containers.
pub const KIND_MODEL: u16 = 2;

// Trip sections.
const TAG_TRIP_OFFSETS: u32 = 0x10;
const TAG_LAT: u32 = 0x11;
const TAG_LON: u32 = 0x12;
const TAG_TS: u32 = 0x13;

// Model sections.
const TAG_META: u32 = 0x20;
const TAG_FEAT_NAMES: u32 = 0x21;
const TAG_FM_NUM_FROM: u32 = 0x22;
const TAG_FM_NUM_TO: u32 = 0x23;
const TAG_FM_NUM_FEAT: u32 = 0x24;
const TAG_FM_NUM_SUM: u32 = 0x25;
const TAG_FM_NUM_COUNT: u32 = 0x26;
const TAG_FM_CAT_FROM: u32 = 0x27;
const TAG_FM_CAT_TO: u32 = 0x28;
const TAG_FM_CAT_FEAT: u32 = 0x29;
const TAG_FM_CAT_CODE: u32 = 0x2A;
const TAG_FM_CAT_COUNT: u32 = 0x2B;
const TAG_CORPUS_OFFSETS: u32 = 0x30;
const TAG_CORPUS_IDS: u32 = 0x31;
const TAG_PAIR_FROM: u32 = 0x32;
const TAG_PAIR_TO: u32 = 0x33;
const TAG_PAIR_OFFSETS: u32 = 0x34;
const TAG_OCC_TRAJ: u32 = 0x35;
const TAG_OCC_START: u32 = 0x36;
const TAG_OCC_END: u32 = 0x37;
const TAG_TR_SRC: u32 = 0x38;
const TAG_TR_OFFSETS: u32 = 0x39;
const TAG_TR_DST: u32 = 0x3A;
const TAG_TR_W: u32 = 0x3B;
const TAG_SUP_FROM: u32 = 0x3C;
const TAG_SUP_TO: u32 = 0x3D;
const TAG_SUP_VAL: u32 = 0x3E;
const TAG_WIN_FROM: u32 = 0x3F;
const TAG_WIN_TO: u32 = 0x40;
const TAG_WIN_OFFSETS: u32 = 0x41;
const TAG_WIN_IDS: u32 = 0x42;

/// Structural corruption in an STC1 file. Every variant is reachable from
/// hostile bytes; none of them panic the decoder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StcError {
    /// The file (or a fixed-size field) ends before its declared extent.
    Truncated {
        /// Bytes needed to satisfy the declared layout.
        expected: u64,
        /// Bytes actually present.
        got: u64,
    },
    /// The first four bytes are not `b"STC1"`.
    BadMagic {
        /// The bytes found where the magic should be.
        got: [u8; 4],
    },
    /// The header declares a container version this build cannot read.
    UnsupportedVersion {
        /// Version found in the header.
        got: u16,
    },
    /// The container holds the wrong artifact kind (trips vs model).
    WrongKind {
        /// Kind the caller asked for.
        expected: u16,
        /// Kind declared in the header.
        got: u16,
    },
    /// A section required by the artifact kind is absent.
    MissingSection {
        /// Tag of the missing section.
        tag: u32,
    },
    /// Parallel columns disagree in length, a section's byte length is not
    /// a multiple of its element size, or a stream has trailing bytes.
    ColumnLengthMismatch {
        /// Which column or stream.
        section: &'static str,
        /// Expected element count / byte position.
        expected: u64,
        /// Observed element count / byte position.
        got: u64,
    },
    /// An offsets column is not a monotone prefix sum from 0 to the total.
    BadOffsets {
        /// Which offsets column.
        section: &'static str,
        /// Index of the offending entry.
        index: usize,
    },
    /// A varint runs past its stream or overflows 64 bits.
    BadVarint {
        /// Which stream.
        section: &'static str,
        /// Byte offset where the bad varint starts.
        offset: usize,
    },
    /// Accumulating timestamp deltas overflowed `i64`.
    TimestampOverflow {
        /// Trip index within the container.
        trip: usize,
        /// Point index within the trip.
        index: usize,
    },
    /// A string-table entry overruns its section or is not UTF-8, or a
    /// row references a name index past the table.
    BadString {
        /// Which section.
        section: &'static str,
        /// Entry or row index.
        index: usize,
    },
}

impl std::fmt::Display for StcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StcError::Truncated { expected, got } => {
                write!(f, "truncated STC1 data: need {expected} bytes, have {got}")
            }
            StcError::BadMagic { got } => {
                write!(f, "not an STC1 file: magic bytes {got:?}")
            }
            StcError::UnsupportedVersion { got } => {
                write!(f, "unsupported STC1 version {got} (this build reads {STC_VERSION})")
            }
            StcError::WrongKind { expected, got } => {
                write!(f, "wrong STC1 artifact kind {got} (expected {expected})")
            }
            StcError::MissingSection { tag } => {
                write!(f, "missing STC1 section 0x{tag:02x}")
            }
            StcError::ColumnLengthMismatch { section, expected, got } => {
                write!(f, "column length mismatch in {section}: expected {expected}, got {got}")
            }
            StcError::BadOffsets { section, index } => {
                write!(f, "non-monotone or out-of-range offset at {section}[{index}]")
            }
            StcError::BadVarint { section, offset } => {
                write!(f, "bad varint in {section} at byte {offset}")
            }
            StcError::TimestampOverflow { trip, index } => {
                write!(f, "timestamp delta overflow at trip {trip}, point {index}")
            }
            StcError::BadString { section, index } => {
                write!(f, "bad string entry at {section}[{index}]")
            }
        }
    }
}

impl std::error::Error for StcError {}

/// Why a *strict* trips read failed: either the container itself is
/// corrupt, or it decoded cleanly but a trip violates the
/// [`RawTrajectory`] invariants (too few points, out-of-order timestamps,
/// bad coordinates). Lenient callers use [`read_raw_trips_stc`] and route
/// the point runs through the sanitizer instead.
#[derive(Debug, Clone, PartialEq)]
pub enum StcReadError {
    /// Structural corruption in the container.
    Format(StcError),
    /// A decoded trip is not a valid trajectory.
    Trip {
        /// Trip index within the container.
        trip: usize,
        /// The invariant it violates.
        source: TrajectoryError,
    },
}

impl std::fmt::Display for StcReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StcReadError::Format(e) => write!(f, "{e}"),
            StcReadError::Trip { trip, source } => write!(f, "trip {trip}: {source}"),
        }
    }
}

impl std::error::Error for StcReadError {}

impl From<StcError> for StcReadError {
    fn from(e: StcError) -> Self {
        StcReadError::Format(e)
    }
}

/// Which on-disk encoding a model file uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelFormat {
    /// The canonical JSON encoding (`TrainedModel::to_json`).
    Json,
    /// The STC1 columnar binary encoding.
    Stc,
}

impl std::str::FromStr for ModelFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "json" => Ok(ModelFormat::Json),
            "stc" => Ok(ModelFormat::Stc),
            other => Err(format!("unknown format {other:?} (expected json or stc)")),
        }
    }
}

impl std::fmt::Display for ModelFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelFormat::Json => write!(f, "json"),
            ModelFormat::Stc => write!(f, "stc"),
        }
    }
}

/// True when `bytes` starts with the STC1 magic — the sniff used to pick a
/// decoder for files and request bodies of unknown encoding.
pub fn is_stc(bytes: &[u8]) -> bool {
    bytes.len() >= 4 && bytes[..4] == STC_MAGIC
}

// ---------------------------------------------------------------------------
// Container framing
// ---------------------------------------------------------------------------

const HEADER_BYTES: usize = 16;
const TABLE_ENTRY_BYTES: usize = 24;

fn align8(n: usize) -> usize {
    (n + 7) & !7
}

/// Assembles a container from `(tag, payload)` sections. Payload starts are
/// 8-byte aligned so a memory-mapped reader can reinterpret `f64`/`u64`
/// columns in place.
fn assemble(kind: u16, sections: &[(u32, Vec<u8>)]) -> Vec<u8> {
    let table_bytes = TABLE_ENTRY_BYTES * sections.len();
    let data_start = align8(HEADER_BYTES + table_bytes);
    let payload_bytes: usize = sections.iter().map(|(_, p)| align8(p.len())).sum();
    let mut out = Vec::with_capacity(data_start + payload_bytes);
    out.extend_from_slice(&STC_MAGIC);
    out.extend_from_slice(&STC_VERSION.to_le_bytes());
    out.extend_from_slice(&kind.to_le_bytes());
    out.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes());
    let mut off = data_start as u64;
    for (tag, payload) in sections {
        out.extend_from_slice(&tag.to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes());
        out.extend_from_slice(&off.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        off += align8(payload.len()) as u64;
    }
    out.resize(data_start, 0);
    for (_, payload) in sections {
        out.extend_from_slice(payload);
        out.resize(align8(out.len()), 0);
    }
    out
}

/// A parsed container: header fields plus borrowed section slices. Bounds
/// are fully validated at parse time, so section access cannot overrun.
struct StcView<'a> {
    kind: u16,
    sections: Vec<(u32, &'a [u8])>,
}

impl<'a> StcView<'a> {
    fn parse(bytes: &'a [u8]) -> Result<Self, StcError> {
        let have = bytes.len() as u64;
        if bytes.len() < HEADER_BYTES {
            return Err(StcError::Truncated { expected: HEADER_BYTES as u64, got: have });
        }
        let magic = [bytes[0], bytes[1], bytes[2], bytes[3]];
        if magic != STC_MAGIC {
            return Err(StcError::BadMagic { got: magic });
        }
        let version = u16::from_le_bytes([bytes[4], bytes[5]]);
        if version != STC_VERSION {
            return Err(StcError::UnsupportedVersion { got: version });
        }
        let kind = u16::from_le_bytes([bytes[6], bytes[7]]);
        let n = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]) as usize;
        let table_end = (HEADER_BYTES as u64) + (TABLE_ENTRY_BYTES as u64) * (n as u64);
        if table_end > have {
            return Err(StcError::Truncated { expected: table_end, got: have });
        }
        let mut sections = Vec::with_capacity(n);
        for i in 0..n {
            let e = HEADER_BYTES + TABLE_ENTRY_BYTES * i;
            let tag = u32::from_le_bytes([bytes[e], bytes[e + 1], bytes[e + 2], bytes[e + 3]]);
            let off = u64::from_le_bytes([
                bytes[e + 8],
                bytes[e + 9],
                bytes[e + 10],
                bytes[e + 11],
                bytes[e + 12],
                bytes[e + 13],
                bytes[e + 14],
                bytes[e + 15],
            ]);
            let len = u64::from_le_bytes([
                bytes[e + 16],
                bytes[e + 17],
                bytes[e + 18],
                bytes[e + 19],
                bytes[e + 20],
                bytes[e + 21],
                bytes[e + 22],
                bytes[e + 23],
            ]);
            let end = off
                .checked_add(len)
                .ok_or(StcError::Truncated { expected: u64::MAX, got: have })?;
            if end > have {
                return Err(StcError::Truncated { expected: end, got: have });
            }
            sections.push((tag, &bytes[off as usize..end as usize]));
        }
        Ok(Self { kind, sections })
    }

    fn expect_kind(&self, expected: u16) -> Result<(), StcError> {
        if self.kind == expected {
            Ok(())
        } else {
            Err(StcError::WrongKind { expected, got: self.kind })
        }
    }

    fn section(&self, tag: u32) -> Result<&'a [u8], StcError> {
        self.sections
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, s)| *s)
            .ok_or(StcError::MissingSection { tag })
    }
}

// ---------------------------------------------------------------------------
// Column encoding helpers
// ---------------------------------------------------------------------------

fn col_u32(vals: impl IntoIterator<Item = u32>) -> Vec<u8> {
    let mut out = Vec::new();
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

fn col_u64(vals: impl IntoIterator<Item = u64>) -> Vec<u8> {
    let mut out = Vec::new();
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

fn col_f64(vals: impl IntoIterator<Item = f64>) -> Vec<u8> {
    col_u64(vals.into_iter().map(f64::to_bits))
}

fn u32_col(view: &StcView, tag: u32, name: &'static str) -> Result<Vec<u32>, StcError> {
    let s = view.section(tag)?;
    if s.len() % 4 != 0 {
        return Err(StcError::ColumnLengthMismatch {
            section: name,
            expected: (s.len() / 4 * 4) as u64,
            got: s.len() as u64,
        });
    }
    Ok(s.chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("chunk is 4 bytes")))
        .collect())
}

fn u64_col(view: &StcView, tag: u32, name: &'static str) -> Result<Vec<u64>, StcError> {
    let s = view.section(tag)?;
    if s.len() % 8 != 0 {
        return Err(StcError::ColumnLengthMismatch {
            section: name,
            expected: (s.len() / 8 * 8) as u64,
            got: s.len() as u64,
        });
    }
    Ok(s.chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("chunk is 8 bytes")))
        .collect())
}

fn f64_col(view: &StcView, tag: u32, name: &'static str) -> Result<Vec<f64>, StcError> {
    Ok(u64_col(view, tag, name)?.into_iter().map(f64::from_bits).collect())
}

fn same_len(name: &'static str, expected: usize, got: usize) -> Result<(), StcError> {
    if expected == got {
        Ok(())
    } else {
        Err(StcError::ColumnLengthMismatch {
            section: name,
            expected: expected as u64,
            got: got as u64,
        })
    }
}

/// Validates a prefix-sum offsets column: first entry 0, monotone
/// non-decreasing, last entry equal to `total` elements of the column it
/// indexes into. Returns the offsets as `usize` for slicing.
fn check_offsets(offs: &[u64], total: usize, name: &'static str) -> Result<Vec<usize>, StcError> {
    let Some((&first, _)) = offs.split_first() else {
        return Err(StcError::ColumnLengthMismatch { section: name, expected: 1, got: 0 });
    };
    if first != 0 {
        return Err(StcError::BadOffsets { section: name, index: 0 });
    }
    let mut out = Vec::with_capacity(offs.len());
    let mut prev = 0u64;
    for (i, &o) in offs.iter().enumerate() {
        if o < prev || o > total as u64 {
            return Err(StcError::BadOffsets { section: name, index: i });
        }
        prev = o;
        out.push(o as usize);
    }
    if prev != total as u64 {
        return Err(StcError::ColumnLengthMismatch {
            section: name,
            expected: total as u64,
            got: prev,
        });
    }
    Ok(out)
}

fn prefix_offsets(counts: impl IntoIterator<Item = usize>) -> Vec<u64> {
    let mut offs = vec![0u64];
    let mut acc = 0u64;
    for c in counts {
        acc += c as u64;
        offs.push(acc);
    }
    offs
}

// ---------------------------------------------------------------------------
// Varints (LEB128) with zigzag for signed values
// ---------------------------------------------------------------------------

fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

fn push_zigzag(out: &mut Vec<u8>, n: i64) {
    push_varint(out, ((n << 1) ^ (n >> 63)) as u64);
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn read_varint(buf: &[u8], pos: &mut usize, section: &'static str) -> Result<u64, StcError> {
    let start = *pos;
    let mut shift = 0u32;
    let mut val = 0u64;
    loop {
        let &b = buf.get(*pos).ok_or(StcError::BadVarint { section, offset: start })?;
        *pos += 1;
        if shift > 63 || (shift == 63 && (b & 0x7f) > 1) {
            return Err(StcError::BadVarint { section, offset: start });
        }
        val |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok(val);
        }
        shift += 7;
    }
}

fn read_zigzag(buf: &[u8], pos: &mut usize, section: &'static str) -> Result<i64, StcError> {
    Ok(unzigzag(read_varint(buf, pos, section)?))
}

// ---------------------------------------------------------------------------
// Trips
// ---------------------------------------------------------------------------

/// Encodes validated trajectories. See [`write_point_runs_stc`] for the
/// layout; this is the path `convert` and the benches use for clean data.
pub fn write_trips_stc(trips: &[RawTrajectory]) -> Vec<u8> {
    write_point_runs_stc(trips.iter().map(|t| t.points()))
}

/// Encodes arbitrary point runs — including defective ones (out-of-order
/// timestamps, bad coordinates) — so `convert` can carry raw uploads into
/// STC1 *before* sanitization without losing the defects the sanitizer
/// needs to see. Timestamps within ±2⁶² seconds round-trip exactly (every
/// realistic epoch by ~10¹¹ years).
pub fn write_point_runs_stc<'a>(runs: impl IntoIterator<Item = &'a [RawPoint]>) -> Vec<u8> {
    let mut offsets = vec![0u64];
    let mut lat: Vec<u8> = Vec::new();
    let mut lon: Vec<u8> = Vec::new();
    let mut ts: Vec<u8> = Vec::new();
    let mut n_points = 0u64;
    for run in runs {
        for p in run {
            lat.extend_from_slice(&p.point.lat.to_bits().to_le_bytes());
            lon.extend_from_slice(&p.point.lon.to_bits().to_le_bytes());
        }
        if let Some((first, rest)) = run.split_first() {
            push_zigzag(&mut ts, first.t.0);
            let mut prev = first.t.0;
            for p in rest {
                push_zigzag(&mut ts, p.t.0.wrapping_sub(prev));
                prev = p.t.0;
            }
        }
        n_points += run.len() as u64;
        offsets.push(n_points);
    }
    assemble(
        KIND_TRIPS,
        &[(TAG_TRIP_OFFSETS, col_u64(offsets)), (TAG_LAT, lat), (TAG_LON, lon), (TAG_TS, ts)],
    )
}

/// Lenient trips decode: structural corruption is a typed [`StcError`],
/// but the *content* of each trip is returned as-is — defective runs flow
/// to the `--sanitize` policies exactly like the lenient text readers.
pub fn read_raw_trips_stc(bytes: &[u8]) -> Result<Vec<Vec<RawPoint>>, StcError> {
    let view = StcView::parse(bytes)?;
    view.expect_kind(KIND_TRIPS)?;
    let offs_raw = u64_col(&view, TAG_TRIP_OFFSETS, "trip_offsets")?;
    let lat = f64_col(&view, TAG_LAT, "lat")?;
    let lon = f64_col(&view, TAG_LON, "lon")?;
    same_len("lon", lat.len(), lon.len())?;
    let offs = check_offsets(&offs_raw, lat.len(), "trip_offsets")?;
    let ts = view.section(TAG_TS)?;
    let mut pos = 0usize;
    let mut trips = Vec::with_capacity(offs.len() - 1);
    for (ti, w) in offs.windows(2).enumerate() {
        let (a, b) = (w[0], w[1]);
        let mut pts = Vec::with_capacity(b - a);
        let mut t_prev = 0i64;
        for i in a..b {
            let d = read_zigzag(ts, &mut pos, "timestamps")?;
            let t = if i == a {
                d
            } else {
                t_prev
                    .checked_add(d)
                    .ok_or(StcError::TimestampOverflow { trip: ti, index: i - a })?
            };
            t_prev = t;
            pts.push(RawPoint { point: GeoPoint { lat: lat[i], lon: lon[i] }, t: Timestamp(t) });
        }
        trips.push(pts);
    }
    if pos != ts.len() {
        return Err(StcError::ColumnLengthMismatch {
            section: "timestamps",
            expected: pos as u64,
            got: ts.len() as u64,
        });
    }
    Ok(trips)
}

/// Strict trips decode: every trip must satisfy the [`RawTrajectory`]
/// invariants, with per-trip typed errors otherwise.
pub fn read_trips_stc(bytes: &[u8]) -> Result<Vec<RawTrajectory>, StcReadError> {
    let runs = read_raw_trips_stc(bytes)?;
    runs.into_iter()
        .enumerate()
        .map(|(i, pts)| {
            RawTrajectory::try_new(pts).map_err(|source| StcReadError::Trip { trip: i, source })
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Models
// ---------------------------------------------------------------------------

/// Encodes a trained model. Rows come out of the columnar boundaries
/// key-sorted, so the encoding is a pure function of the model's logical
/// content — two models with equal `to_json` encode to identical bytes.
pub fn write_model_stc(model: &TrainedModel) -> Vec<u8> {
    let numeric = model.featmap.numeric_rows();
    let categorical = model.featmap.categorical_rows();
    let parts = model.popular.to_parts();

    let mut names: Vec<&str> = numeric
        .iter()
        .map(|r| r.2.as_str())
        .chain(categorical.iter().map(|r| r.2.as_str()))
        .collect();
    names.sort_unstable();
    names.dedup();
    let name_idx =
        |s: &str| -> u32 { names.binary_search(&s).expect("feature name interned above") as u32 };
    let mut feat_names = Vec::new();
    feat_names.extend_from_slice(&(names.len() as u64).to_le_bytes());
    for n in &names {
        feat_names.extend_from_slice(&(n.len() as u32).to_le_bytes());
        feat_names.extend_from_slice(n.as_bytes());
    }

    let meta = col_u64([
        model.n_trained as u64,
        model.registry_len as u64,
        parts.cfg.min_support as u64,
        parts.cfg.max_indexed_span as u64,
    ]);

    let corpus_offsets = prefix_offsets(parts.corpus.iter().map(Vec::len));
    let corpus_ids = col_u32(parts.corpus.iter().flatten().map(|l| l.0));

    let pair_offsets = prefix_offsets(parts.pairs.iter().map(|(_, occs)| occs.len()));
    let sections = vec![
        (TAG_META, meta),
        (TAG_FEAT_NAMES, feat_names),
        (TAG_FM_NUM_FROM, col_u32(numeric.iter().map(|r| r.0 .0))),
        (TAG_FM_NUM_TO, col_u32(numeric.iter().map(|r| r.1 .0))),
        (TAG_FM_NUM_FEAT, col_u32(numeric.iter().map(|r| name_idx(&r.2)))),
        (TAG_FM_NUM_SUM, col_f64(numeric.iter().map(|r| r.3))),
        (TAG_FM_NUM_COUNT, col_u64(numeric.iter().map(|r| r.4))),
        (TAG_FM_CAT_FROM, col_u32(categorical.iter().map(|r| r.0 .0))),
        (TAG_FM_CAT_TO, col_u32(categorical.iter().map(|r| r.1 .0))),
        (TAG_FM_CAT_FEAT, col_u32(categorical.iter().map(|r| name_idx(&r.2)))),
        (TAG_FM_CAT_CODE, col_u32(categorical.iter().map(|r| r.3))),
        (TAG_FM_CAT_COUNT, col_u64(categorical.iter().map(|r| r.4))),
        (TAG_CORPUS_OFFSETS, col_u64(corpus_offsets)),
        (TAG_CORPUS_IDS, corpus_ids),
        (TAG_PAIR_FROM, col_u32(parts.pairs.iter().map(|((f, _), _)| f.0))),
        (TAG_PAIR_TO, col_u32(parts.pairs.iter().map(|((_, t), _)| t.0))),
        (TAG_PAIR_OFFSETS, col_u64(pair_offsets)),
        (TAG_OCC_TRAJ, col_u32(parts.pairs.iter().flat_map(|(_, o)| o.iter().map(|x| x.0)))),
        (TAG_OCC_START, col_u32(parts.pairs.iter().flat_map(|(_, o)| o.iter().map(|x| x.1)))),
        (TAG_OCC_END, col_u32(parts.pairs.iter().flat_map(|(_, o)| o.iter().map(|x| x.2)))),
        (TAG_TR_SRC, col_u32(parts.transfers.iter().map(|(s, _)| s.0))),
        (TAG_TR_OFFSETS, col_u64(prefix_offsets(parts.transfers.iter().map(|(_, d)| d.len())))),
        (TAG_TR_DST, col_u32(parts.transfers.iter().flat_map(|(_, d)| d.iter().map(|x| x.0 .0)))),
        (TAG_TR_W, col_f64(parts.transfers.iter().flat_map(|(_, d)| d.iter().map(|x| x.1)))),
        (TAG_SUP_FROM, col_u32(parts.supports.iter().map(|((f, _), _)| f.0))),
        (TAG_SUP_TO, col_u32(parts.supports.iter().map(|((_, t), _)| t.0))),
        (TAG_SUP_VAL, col_u32(parts.supports.iter().map(|(_, v)| *v))),
        (TAG_WIN_FROM, col_u32(parts.winners.iter().map(|((f, _), _)| f.0))),
        (TAG_WIN_TO, col_u32(parts.winners.iter().map(|((_, t), _)| t.0))),
        (TAG_WIN_OFFSETS, col_u64(prefix_offsets(parts.winners.iter().map(|(_, ids)| ids.len())))),
        (TAG_WIN_IDS, col_u32(parts.winners.iter().flat_map(|(_, ids)| ids.iter().map(|l| l.0)))),
    ];
    assemble(KIND_MODEL, &sections)
}

fn read_names(buf: &[u8]) -> Result<Vec<String>, StcError> {
    const S: &str = "feat_names";
    if buf.len() < 8 {
        return Err(StcError::Truncated { expected: 8, got: buf.len() as u64 });
    }
    let count = u64::from_le_bytes(buf[..8].try_into().expect("checked 8 bytes"));
    let mut pos = 8usize;
    // Each entry needs ≥ 4 bytes, so a hostile count cannot out-allocate
    // the actual section size.
    let mut names = Vec::with_capacity(((buf.len() - 8) / 4).min(count as usize));
    for i in 0..count {
        let i = i as usize;
        let hdr = buf.get(pos..pos + 4).ok_or(StcError::BadString { section: S, index: i })?;
        let len = u32::from_le_bytes(hdr.try_into().expect("checked 4 bytes")) as usize;
        pos += 4;
        let end = pos.checked_add(len).ok_or(StcError::BadString { section: S, index: i })?;
        let bytes = buf.get(pos..end).ok_or(StcError::BadString { section: S, index: i })?;
        pos = end;
        let s =
            std::str::from_utf8(bytes).map_err(|_| StcError::BadString { section: S, index: i })?;
        names.push(s.to_owned());
    }
    if pos != buf.len() {
        return Err(StcError::ColumnLengthMismatch {
            section: S,
            expected: pos as u64,
            got: buf.len() as u64,
        });
    }
    Ok(names)
}

/// Resolves a feature-name index column against the string table.
fn resolve_names<'n>(
    idxs: &[u32],
    names: &'n [String],
    section: &'static str,
) -> Result<Vec<&'n String>, StcError> {
    idxs.iter()
        .enumerate()
        .map(|(i, &ix)| names.get(ix as usize).ok_or(StcError::BadString { section, index: i }))
        .collect()
}

/// Decodes a trained model. The rebuilt model's `to_json` is byte-identical
/// to the source model's: map insertion order is irrelevant because the
/// JSON encoder key-sorts (`serde_vecmap`), list-valued state is restored
/// in stored order, and every `f64` travels as exact bits.
pub fn read_model_stc(bytes: &[u8]) -> Result<TrainedModel, StcError> {
    let view = StcView::parse(bytes)?;
    view.expect_kind(KIND_MODEL)?;

    let meta = u64_col(&view, TAG_META, "meta")?;
    if meta.len() != 4 {
        return Err(StcError::ColumnLengthMismatch {
            section: "meta",
            expected: 4,
            got: meta.len() as u64,
        });
    }
    let names = read_names(view.section(TAG_FEAT_NAMES)?)?;

    let num_from = u32_col(&view, TAG_FM_NUM_FROM, "fm_num_from")?;
    let num_to = u32_col(&view, TAG_FM_NUM_TO, "fm_num_to")?;
    let num_feat = u32_col(&view, TAG_FM_NUM_FEAT, "fm_num_feat")?;
    let num_sum = f64_col(&view, TAG_FM_NUM_SUM, "fm_num_sum")?;
    let num_count = u64_col(&view, TAG_FM_NUM_COUNT, "fm_num_count")?;
    same_len("fm_num_to", num_from.len(), num_to.len())?;
    same_len("fm_num_feat", num_from.len(), num_feat.len())?;
    same_len("fm_num_sum", num_from.len(), num_sum.len())?;
    same_len("fm_num_count", num_from.len(), num_count.len())?;
    let num_names = resolve_names(&num_feat, &names, "fm_num_feat")?;

    let cat_from = u32_col(&view, TAG_FM_CAT_FROM, "fm_cat_from")?;
    let cat_to = u32_col(&view, TAG_FM_CAT_TO, "fm_cat_to")?;
    let cat_feat = u32_col(&view, TAG_FM_CAT_FEAT, "fm_cat_feat")?;
    let cat_code = u32_col(&view, TAG_FM_CAT_CODE, "fm_cat_code")?;
    let cat_count = u64_col(&view, TAG_FM_CAT_COUNT, "fm_cat_count")?;
    same_len("fm_cat_to", cat_from.len(), cat_to.len())?;
    same_len("fm_cat_feat", cat_from.len(), cat_feat.len())?;
    same_len("fm_cat_code", cat_from.len(), cat_code.len())?;
    same_len("fm_cat_count", cat_from.len(), cat_count.len())?;
    let cat_names = resolve_names(&cat_feat, &names, "fm_cat_feat")?;

    let featmap = HistoricalFeatureMap::from_rows(
        (0..num_from.len()).map(|i| {
            (
                LandmarkId(num_from[i]),
                LandmarkId(num_to[i]),
                num_names[i].clone(),
                num_sum[i],
                num_count[i],
            )
        }),
        (0..cat_from.len()).map(|i| {
            (
                LandmarkId(cat_from[i]),
                LandmarkId(cat_to[i]),
                cat_names[i].clone(),
                cat_code[i],
                cat_count[i],
            )
        }),
    );

    let corpus_ids = u32_col(&view, TAG_CORPUS_IDS, "corpus_ids")?;
    let corpus_offs = check_offsets(
        &u64_col(&view, TAG_CORPUS_OFFSETS, "corpus_offsets")?,
        corpus_ids.len(),
        "corpus_offsets",
    )?;
    let corpus: Vec<Vec<LandmarkId>> = corpus_offs
        .windows(2)
        .map(|w| corpus_ids[w[0]..w[1]].iter().map(|&v| LandmarkId(v)).collect())
        .collect();

    let pair_from = u32_col(&view, TAG_PAIR_FROM, "pair_from")?;
    let pair_to = u32_col(&view, TAG_PAIR_TO, "pair_to")?;
    same_len("pair_to", pair_from.len(), pair_to.len())?;
    let occ_traj = u32_col(&view, TAG_OCC_TRAJ, "occ_traj")?;
    let occ_start = u32_col(&view, TAG_OCC_START, "occ_start")?;
    let occ_end = u32_col(&view, TAG_OCC_END, "occ_end")?;
    same_len("occ_start", occ_traj.len(), occ_start.len())?;
    same_len("occ_end", occ_traj.len(), occ_end.len())?;
    let pair_offs = check_offsets(
        &u64_col(&view, TAG_PAIR_OFFSETS, "pair_offsets")?,
        occ_traj.len(),
        "pair_offsets",
    )?;
    same_len("pair_offsets", pair_from.len() + 1, pair_offs.len())?;
    let pairs: Vec<((LandmarkId, LandmarkId), Vec<(u32, u32, u32)>)> = pair_offs
        .windows(2)
        .enumerate()
        .map(|(i, w)| {
            (
                (LandmarkId(pair_from[i]), LandmarkId(pair_to[i])),
                (w[0]..w[1]).map(|j| (occ_traj[j], occ_start[j], occ_end[j])).collect(),
            )
        })
        .collect();

    let tr_src = u32_col(&view, TAG_TR_SRC, "tr_src")?;
    let tr_dst = u32_col(&view, TAG_TR_DST, "tr_dst")?;
    let tr_w = f64_col(&view, TAG_TR_W, "tr_w")?;
    same_len("tr_w", tr_dst.len(), tr_w.len())?;
    let tr_offs =
        check_offsets(&u64_col(&view, TAG_TR_OFFSETS, "tr_offsets")?, tr_dst.len(), "tr_offsets")?;
    same_len("tr_offsets", tr_src.len() + 1, tr_offs.len())?;
    let transfers: Vec<(LandmarkId, Vec<(LandmarkId, f64)>)> = tr_offs
        .windows(2)
        .enumerate()
        .map(|(i, w)| {
            (
                LandmarkId(tr_src[i]),
                (w[0]..w[1]).map(|j| (LandmarkId(tr_dst[j]), tr_w[j])).collect(),
            )
        })
        .collect();

    let sup_from = u32_col(&view, TAG_SUP_FROM, "sup_from")?;
    let sup_to = u32_col(&view, TAG_SUP_TO, "sup_to")?;
    let sup_val = u32_col(&view, TAG_SUP_VAL, "sup_val")?;
    same_len("sup_to", sup_from.len(), sup_to.len())?;
    same_len("sup_val", sup_from.len(), sup_val.len())?;
    let supports: Vec<((LandmarkId, LandmarkId), u32)> = (0..sup_from.len())
        .map(|i| ((LandmarkId(sup_from[i]), LandmarkId(sup_to[i])), sup_val[i]))
        .collect();

    let win_from = u32_col(&view, TAG_WIN_FROM, "win_from")?;
    let win_to = u32_col(&view, TAG_WIN_TO, "win_to")?;
    same_len("win_to", win_from.len(), win_to.len())?;
    let win_ids = u32_col(&view, TAG_WIN_IDS, "win_ids")?;
    let win_offs = check_offsets(
        &u64_col(&view, TAG_WIN_OFFSETS, "win_offsets")?,
        win_ids.len(),
        "win_offsets",
    )?;
    same_len("win_offsets", win_from.len() + 1, win_offs.len())?;
    let winners: Vec<((LandmarkId, LandmarkId), Vec<LandmarkId>)> = win_offs
        .windows(2)
        .enumerate()
        .map(|(i, w)| {
            (
                (LandmarkId(win_from[i]), LandmarkId(win_to[i])),
                (w[0]..w[1]).map(|j| LandmarkId(win_ids[j])).collect(),
            )
        })
        .collect();

    let parts = PopularRoutesParts {
        cfg: PopularRouteConfig {
            min_support: meta[2] as usize,
            max_indexed_span: meta[3] as usize,
        },
        corpus,
        pairs,
        transfers,
        supports,
        winners,
    };
    Ok(TrainedModel {
        popular: PopularRoutes::from_parts(parts),
        featmap,
        n_trained: meta[0] as usize,
        registry_len: meta[1] as usize,
    })
}

// ---------------------------------------------------------------------------
// File helpers
// ---------------------------------------------------------------------------

fn invalid_data(e: impl std::error::Error + Send + Sync + 'static) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, e)
}

/// Reads a model file of either encoding, sniffing the STC1 magic and
/// falling back to JSON. All decode failures surface as
/// `io::ErrorKind::InvalidData` with the typed error as source.
pub fn read_model_file(path: impl AsRef<std::path::Path>) -> std::io::Result<TrainedModel> {
    read_model_file_as(path, None)
}

/// Like [`read_model_file`], but `format` (when given) forces a decoder
/// instead of sniffing — the CLI's `--format` escape hatch for files whose
/// leading bytes are untrustworthy.
pub fn read_model_file_as(
    path: impl AsRef<std::path::Path>,
    format: Option<ModelFormat>,
) -> std::io::Result<TrainedModel> {
    let bytes = std::fs::read(path)?;
    let format =
        format.unwrap_or(if is_stc(&bytes) { ModelFormat::Stc } else { ModelFormat::Json });
    match format {
        ModelFormat::Stc => read_model_stc(&bytes).map_err(invalid_data),
        ModelFormat::Json => {
            let text = String::from_utf8(bytes).map_err(|e| invalid_data(e.utf8_error()))?;
            TrainedModel::from_json(&text).map_err(invalid_data)
        }
    }
}

/// Writes a model file in the requested encoding (buffered, single write).
pub fn write_model_file(
    path: impl AsRef<std::path::Path>,
    model: &TrainedModel,
    format: ModelFormat,
) -> std::io::Result<()> {
    let bytes = match format {
        ModelFormat::Stc => write_model_stc(model),
        ModelFormat::Json => model.to_json().into_bytes(),
    };
    std::fs::write(path, bytes)
}

/// Deduplicates `(tag → first section)` semantics for test introspection:
/// returns the byte length of each section keyed by tag. Exposed for the
/// fault-injection tests, which patch specific sections.
pub fn section_lengths(bytes: &[u8]) -> Result<HashMap<u32, usize>, StcError> {
    let view = StcView::parse(bytes)?;
    // lint: ordered — map is a lookup table keyed by tag; callers index, never iterate
    Ok(view.sections.iter().map(|(t, s)| (*t, s.len())).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(lat: f64, lon: f64, t: i64) -> RawPoint {
        RawPoint { point: GeoPoint { lat, lon }, t: Timestamp(t) }
    }

    fn two_trips() -> Vec<RawTrajectory> {
        vec![
            RawTrajectory::new(vec![pt(39.1, 116.2, 100), pt(39.2, 116.3, 160)]),
            RawTrajectory::new(vec![pt(40.0, 117.0, 0), pt(40.1, 117.1, 30), pt(40.2, 117.2, 95)]),
        ]
    }

    #[test]
    fn trips_round_trip_exactly() {
        let trips = two_trips();
        let bytes = write_trips_stc(&trips);
        assert!(is_stc(&bytes));
        let back = read_trips_stc(&bytes).unwrap();
        assert_eq!(trips, back);
    }

    #[test]
    fn empty_trip_set_round_trips() {
        let bytes = write_trips_stc(&[]);
        assert!(read_trips_stc(&bytes).unwrap().is_empty());
    }

    #[test]
    fn defective_runs_survive_lenient_decode() {
        // Out-of-order timestamps and an out-of-range coordinate must reach
        // the sanitizer unaltered.
        let runs: Vec<Vec<RawPoint>> =
            vec![vec![pt(39.0, 116.0, 500), pt(95.0, 116.1, 400), pt(39.2, 116.2, 450)]];
        let bytes = write_point_runs_stc(runs.iter().map(Vec::as_slice));
        let back = read_raw_trips_stc(&bytes).unwrap();
        assert_eq!(runs, back);
        // The strict reader refuses the same bytes with a typed trip error.
        match read_trips_stc(&bytes) {
            Err(StcReadError::Trip { trip: 0, .. }) => {}
            other => panic!("expected trip error, got {other:?}"),
        }
    }

    #[test]
    fn truncated_and_garbled_headers_are_typed() {
        let bytes = write_trips_stc(&two_trips());
        assert_eq!(
            read_raw_trips_stc(&bytes[..8]),
            Err(StcError::Truncated { expected: 16, got: 8 })
        );
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(read_raw_trips_stc(&bad), Err(StcError::BadMagic { .. })));
        let mut v2 = bytes.clone();
        v2[4] = 2;
        assert_eq!(read_raw_trips_stc(&v2), Err(StcError::UnsupportedVersion { got: 2 }));
        let mut wrong = bytes;
        wrong[6] = KIND_MODEL as u8;
        assert_eq!(
            read_raw_trips_stc(&wrong),
            Err(StcError::WrongKind { expected: KIND_TRIPS, got: KIND_MODEL })
        );
    }

    #[test]
    fn zigzag_round_trips_extremes() {
        for n in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN, 1 << 40, -(1 << 40)] {
            let mut buf = Vec::new();
            push_zigzag(&mut buf, n);
            let mut pos = 0;
            assert_eq!(read_zigzag(&buf, &mut pos, "t").unwrap(), n);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn varint_overflow_is_an_error() {
        // 11 continuation bytes can never be a valid u64 varint.
        let buf = [0xffu8; 11];
        let mut pos = 0;
        assert_eq!(
            read_varint(&buf, &mut pos, "t"),
            Err(StcError::BadVarint { section: "t", offset: 0 })
        );
    }

    #[test]
    fn sections_are_aligned() {
        let bytes = write_trips_stc(&two_trips());
        let view = StcView::parse(&bytes).unwrap();
        for (_, s) in &view.sections {
            let off = s.as_ptr() as usize - bytes.as_ptr() as usize;
            assert_eq!(off % 8, 0, "section payload not 8-byte aligned");
        }
    }

    #[test]
    fn model_format_parses() {
        assert_eq!("json".parse::<ModelFormat>(), Ok(ModelFormat::Json));
        assert_eq!("stc".parse::<ModelFormat>(), Ok(ModelFormat::Stc));
        assert!("parquet".parse::<ModelFormat>().is_err());
    }

    #[test]
    fn empty_model_round_trips_canonically() {
        let model = TrainedModel {
            popular: PopularRoutes::from_parts(PopularRoutesParts::default()),
            featmap: HistoricalFeatureMap::new(),
            n_trained: 0,
            registry_len: 7,
        };
        let bytes = write_model_stc(&model);
        let back = read_model_stc(&bytes).unwrap();
        assert_eq!(model.to_json(), back.to_json());
    }

    #[test]
    fn featmap_rows_round_trip_in_model() {
        let mut fm = HistoricalFeatureMap::new();
        fm.add_observation(LandmarkId(1), LandmarkId(2), "speed", 33.25);
        fm.add_observation(LandmarkId(1), LandmarkId(2), "speed", 0.1);
        fm.add_categorical_observation(LandmarkId(2), LandmarkId(3), "grade", 4);
        let model = TrainedModel {
            popular: PopularRoutes::from_parts(PopularRoutesParts::default()),
            featmap: fm,
            n_trained: 2,
            registry_len: 9,
        };
        let bytes = write_model_stc(&model);
        let back = read_model_stc(&bytes).unwrap();
        assert_eq!(model.to_json(), back.to_json());
        assert_eq!(
            back.featmap.regular_value(LandmarkId(1), LandmarkId(2), "speed"),
            model.featmap.regular_value(LandmarkId(1), LandmarkId(2), "speed"),
        );
    }

    #[test]
    fn model_decode_rejects_trips_container() {
        let bytes = write_trips_stc(&two_trips());
        assert!(matches!(
            read_model_stc(&bytes),
            Err(StcError::WrongKind { expected: KIND_MODEL, got: KIND_TRIPS })
        ));
    }
}
