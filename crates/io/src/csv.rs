//! CSV trajectories: the paper's Table I layout.
//!
//! Accepted row forms (comma- or whitespace-separated, optional header):
//!
//! ```text
//! latitude,longitude,timestamp
//! 39.9383,116.339,1383383876           # Unix seconds
//! 39.9383 116.339 20131102 09:17:56    # the paper's Table I datetime
//! ```

use std::io::{BufRead, Write};

use crate::FormatError;
use stmaker_geo::GeoPoint;
use stmaker_trajectory::{RawPoint, RawTrajectory, Timestamp};

/// Parses rows into `(line_no, point)` pairs without validating values —
/// the shared front half of the strict and lenient readers. `"nan"` and
/// `"inf"` are valid `f64` spellings, so defective samples survive this
/// stage; only *structurally* unreadable rows (non-numeric fields, bad
/// datetimes) error.
///
/// Streams from any `BufRead`, reusing one line buffer across `read_line`
/// calls — ingest allocates per *point*, never per line. Returns the rows
/// plus the total line count (the strict validator reports "too few
/// samples" against the last line of the file).
fn parse_rows_csv_from<R: BufRead>(
    mut reader: R,
) -> Result<(Vec<(usize, RawPoint)>, usize), FormatError> {
    let mut rows = Vec::new();
    let mut seen_data = false;
    let mut buf = String::new();
    let mut line_no = 0usize;
    loop {
        buf.clear();
        let n = reader
            .read_line(&mut buf)
            .map_err(|e| FormatError::new(line_no + 1, format!("read failed: {e}")))?;
        if n == 0 {
            break;
        }
        line_no += 1;
        let line = buf.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> =
            line.split(|c: char| c == ',' || c.is_whitespace()).filter(|f| !f.is_empty()).collect();
        // Header detection: the first non-comment line is a header iff its
        // first field is not a number. (Parsing, not "contains a letter",
        // so scientific-notation data rows are never mistaken for headers,
        // and a header after comments/blank lines is still recognized.)
        if !seen_data && fields.first().map(|f| f.parse::<f64>().is_err()).unwrap_or(false) {
            continue; // header row
        }
        seen_data = true;
        if fields.len() < 3 {
            return Err(FormatError::new(
                line_no,
                format!("expected ≥ 3 fields, got {}", fields.len()),
            ));
        }
        let lat: f64 = fields[0]
            .parse()
            .map_err(|_| FormatError::new(line_no, format!("bad latitude {:?}", fields[0])))?;
        let lon: f64 = fields[1]
            .parse()
            .map_err(|_| FormatError::new(line_no, format!("bad longitude {:?}", fields[1])))?;
        let t = parse_timestamp(&fields[2..], line_no)?;
        // Struct literal, not `GeoPoint::new`: the constructor asserts on
        // defective values, and the whole point of the lenient path is to
        // carry them to the sanitizer intact.
        rows.push((line_no, RawPoint { point: GeoPoint { lat, lon }, t }));
    }
    Ok((rows, line_no))
}

/// Validates parsed rows: finite + in-range coordinates, at least two
/// samples, non-decreasing timestamps — each failure reported with the
/// 1-based line number of the offending row.
fn validate_rows(rows: &[(usize, RawPoint)], total_lines: usize) -> Result<(), FormatError> {
    for (line_no, p) in rows {
        if !p.point.lat.is_finite() || !p.point.lon.is_finite() {
            return Err(FormatError::new(
                *line_no,
                format!("non-finite coordinates: {}, {}", p.point.lat, p.point.lon),
            ));
        }
        if !(-90.0..=90.0).contains(&p.point.lat) || !(-180.0..=180.0).contains(&p.point.lon) {
            return Err(FormatError::new(
                *line_no,
                format!("coordinates out of range: {}, {}", p.point.lat, p.point.lon),
            ));
        }
    }
    if rows.len() < 2 {
        return Err(FormatError::new(
            total_lines,
            format!("a trajectory needs at least 2 samples, got {}", rows.len()),
        ));
    }
    for w in rows.windows(2) {
        if w[1].1.t < w[0].1.t {
            return Err(FormatError::new(
                w[1].0,
                format!(
                    "timestamps must be non-decreasing: t={} after t={}",
                    w[1].1.t.0, w[0].1.t.0
                ),
            ));
        }
    }
    Ok(())
}

/// Parses a trajectory from CSV text, rejecting any defective sample
/// (non-finite or out-of-range coordinates, decreasing timestamps) with the
/// offending line number.
pub fn read_trajectory_csv(text: &str) -> Result<RawTrajectory, FormatError> {
    read_trajectory_csv_from(text.as_bytes())
}

/// Streaming variant of [`read_trajectory_csv`]: parses directly off a
/// buffered reader (a `BufReader<File>`, a socket) without materializing
/// the document as one `String`.
pub fn read_trajectory_csv_from<R: BufRead>(reader: R) -> Result<RawTrajectory, FormatError> {
    let (rows, total_lines) = parse_rows_csv_from(reader)?;
    validate_rows(&rows, total_lines)?;
    Ok(RawTrajectory::new(rows.into_iter().map(|(_, p)| p).collect()))
}

/// Parses CSV rows into raw samples *without* validating coordinates or
/// ordering — the lenient front door for
/// `stmaker_trajectory::sanitize`, which wants to see the defects so it can
/// count and repair them. Only structurally unreadable rows error.
pub fn read_raw_points_csv(text: &str) -> Result<Vec<RawPoint>, FormatError> {
    read_raw_points_csv_from(text.as_bytes())
}

/// Streaming variant of [`read_raw_points_csv`].
pub fn read_raw_points_csv_from<R: BufRead>(reader: R) -> Result<Vec<RawPoint>, FormatError> {
    Ok(parse_rows_csv_from(reader)?.0.into_iter().map(|(_, p)| p).collect())
}

/// Serializes a trajectory to the canonical CSV layout (Unix seconds).
pub fn write_trajectory_csv(traj: &RawTrajectory) -> String {
    let mut out = Vec::new();
    write_trajectory_csv_to(&mut out, traj).expect("writing to a Vec cannot fail");
    String::from_utf8(out).expect("CSV output is ASCII")
}

/// Streaming variant of [`write_trajectory_csv`]: emits the identical
/// bytes onto any writer. Callers writing to files should hand in a
/// `BufWriter` — the rows are written one `writeln!` at a time.
pub fn write_trajectory_csv_to<W: Write>(w: &mut W, traj: &RawTrajectory) -> std::io::Result<()> {
    w.write_all(b"latitude,longitude,timestamp\n")?;
    for p in traj.points() {
        writeln!(w, "{:.6},{:.6},{}", p.point.lat, p.point.lon, p.t.0)?;
    }
    Ok(())
}

/// Parses either Unix seconds (one field) or `YYYYMMDD HH:MM:SS` (two
/// fields, the paper's Table I format).
fn parse_timestamp(fields: &[&str], line: usize) -> Result<Timestamp, FormatError> {
    match fields {
        [secs] => secs
            .parse::<i64>()
            .map(Timestamp)
            .map_err(|_| FormatError::new(line, format!("bad timestamp {secs:?}"))),
        [date, time, ..] => parse_datetime(date, time)
            .ok_or_else(|| FormatError::new(line, format!("bad datetime {date:?} {time:?}"))),
        [] => Err(FormatError::new(line, "missing timestamp".to_owned())),
    }
}

/// `YYYYMMDD` + `HH:MM:SS` → seconds since the Unix epoch (UTC, proleptic
/// Gregorian; the civil-from-days algorithm of Howard Hinnant).
fn parse_datetime(date: &str, time: &str) -> Option<Timestamp> {
    if date.len() != 8 {
        return None;
    }
    let year: i64 = date[0..4].parse().ok()?;
    let month: u32 = date[4..6].parse().ok()?;
    let day: u32 = date[6..8].parse().ok()?;
    if !(1..=12).contains(&month) || !(1..=31).contains(&day) {
        return None;
    }
    let hms: Vec<&str> = time.split(':').collect();
    if hms.len() != 3 {
        return None;
    }
    let h: i64 = hms[0].parse().ok()?;
    let m: i64 = hms[1].parse().ok()?;
    let s: i64 = hms[2].parse().ok()?;
    if !(0..24).contains(&h) || !(0..60).contains(&m) || !(0..60).contains(&s) {
        return None;
    }
    Some(Timestamp(days_from_civil(year, month, day) * 86_400 + h * 3600 + m * 60 + s))
}

/// Days since 1970-01-01 for a proleptic-Gregorian civil date.
fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = (m as i64 + 9) % 12; // Mar = 0 … Feb = 11
    let doy = (153 * mp + 2) / 5 + d as i64 - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_unix_seconds() {
        let csv = "latitude,longitude,timestamp\n39.9383,116.339,100\n39.9382,116.337,106\n";
        let traj = read_trajectory_csv(csv).unwrap();
        assert_eq!(traj.len(), 2);
        assert_eq!(traj.start().t, Timestamp(100));
        let back = write_trajectory_csv(&traj);
        let again = read_trajectory_csv(&back).unwrap();
        assert_eq!(traj, again);
    }

    #[test]
    fn parses_table_one_datetime_format() {
        // The paper's Table I rows, verbatim style.
        let csv = "39.9383 116.339 20131102 09:17:56\n39.9382 116.337 20131102 09:18:02\n";
        let traj = read_trajectory_csv(csv).unwrap();
        assert_eq!(traj.duration_secs(), 6);
        // 2013-11-02 is 16011 days after the epoch.
        assert_eq!(traj.start().t.0, 16_011 * 86_400 + 9 * 3600 + 17 * 60 + 56);
    }

    #[test]
    fn days_from_civil_known_dates() {
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(days_from_civil(1970, 1, 2), 1);
        assert_eq!(days_from_civil(2000, 3, 1), 11_017);
        assert_eq!(days_from_civil(2013, 11, 2), 16_011);
        assert_eq!(days_from_civil(1969, 12, 31), -1);
    }

    #[test]
    fn skips_header_comments_and_blanks() {
        let csv = "lat,lon,ts\n# a comment\n\n39.9,116.3,0\n39.91,116.31,10\n";
        let traj = read_trajectory_csv(csv).unwrap();
        assert_eq!(traj.len(), 2);
    }

    #[test]
    fn header_after_comment_and_scientific_notation_rows() {
        // Header preceded by a comment is still recognized as a header…
        let csv = "# export v2\nlat,lon,ts\n39.9,116.3,0\n39.91,116.31,10\n";
        assert_eq!(read_trajectory_csv(csv).unwrap().len(), 2);
        // …and a first data row in scientific notation is data, not a header.
        let csv = "3.99e1,116.3,0\n39.91,116.31,10\n";
        let traj = read_trajectory_csv(csv).unwrap();
        assert_eq!(traj.len(), 2);
        assert!((traj.start().point.lat - 39.9).abs() < 1e-9);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = read_trajectory_csv("39.9,116.3,0\nnot,numbers,here\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bad latitude"), "{e}");
        let e = read_trajectory_csv("39.9,116.3\n").unwrap_err();
        assert_eq!(e.line, 1);
    }

    #[test]
    fn rejects_out_of_range_and_decreasing() {
        assert!(read_trajectory_csv("99.0,116.3,0\n39.9,116.3,5\n").is_err());
        let e = read_trajectory_csv("39.9,116.3,10\n39.9,116.4,5\n").unwrap_err();
        assert!(e.message.contains("non-decreasing"));
        // The ordering error names the offending row, not line 0.
        assert_eq!(e.line, 2);
        let e = read_trajectory_csv("39.9,116.3,0\n39.9,116.4,9\n39.9,116.5,4\n").unwrap_err();
        assert_eq!(e.line, 3);
    }

    #[test]
    fn rejects_non_finite_with_explicit_message() {
        // "nan" and "inf" are valid f64 spellings, so they parse — the
        // reader must still refuse them, and say why (not "out of range").
        let e = read_trajectory_csv("nan,116.3,0\n39.9,116.3,5\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("non-finite"), "{e}");
        let e = read_trajectory_csv("39.9,116.3,0\n39.9,inf,5\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("non-finite"), "{e}");
        let e = read_trajectory_csv("39.9,116.3,0\n39.9,-inf,5\n").unwrap_err();
        assert!(e.message.contains("non-finite"), "{e}");
    }

    #[test]
    fn lenient_reader_carries_defects_through() {
        // The sanitizer's front door: defective values survive parsing so
        // they can be counted and repaired downstream.
        let text = "lat,lon,ts\nnan,116.3,0\n39.9,116.3,10\n39.91,116.31,5\n99.0,116.3,20\n";
        let pts = read_raw_points_csv(text).unwrap();
        assert_eq!(pts.len(), 4);
        assert!(pts[0].point.lat.is_nan());
        assert_eq!(pts[2].t, Timestamp(5)); // out-of-order kept verbatim
        assert_eq!(pts[3].point.lat, 99.0); // out-of-range kept verbatim
                                            // Structurally unreadable rows still error, with their line number.
        let e = read_raw_points_csv("39.9,116.3,0\nnot,numbers,here\n").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn rejects_too_few_samples() {
        let e = read_trajectory_csv("39.9,116.3,0\n").unwrap_err();
        assert!(e.message.contains("at least 2"));
    }

    #[test]
    fn rejects_bad_datetimes() {
        assert!(read_trajectory_csv(
            "39.9 116.3 20131302 09:00:00\n39.9 116.3 20131102 09:00:01\n"
        )
        .is_err());
        assert!(read_trajectory_csv(
            "39.9 116.3 20131102 25:00:00\n39.9 116.3 20131102 09:00:01\n"
        )
        .is_err());
    }
}
