//! Property-based tests: format round-trips over arbitrary trajectories.

use proptest::prelude::*;
use stmaker_geo::GeoPoint;
use stmaker_io::{
    read_trajectory_csv, read_trajectory_jsonl, write_trajectory_csv, write_trajectory_jsonl,
};
use stmaker_trajectory::{RawPoint, RawTrajectory, Timestamp};

fn trajectory_strategy() -> impl Strategy<Value = RawTrajectory> {
    prop::collection::vec((30.0f64..50.0, 100.0f64..130.0, 0i64..600), 2..40).prop_map(|raw| {
        let mut t = 0i64;
        let pts = raw
            .into_iter()
            .map(|(lat, lon, dt)| {
                t += dt;
                RawPoint { point: GeoPoint::new(lat, lon), t: Timestamp(t) }
            })
            .collect();
        RawTrajectory::new(pts)
    })
}

proptest! {
    #[test]
    fn csv_round_trip_preserves_time_and_approximate_position(traj in trajectory_strategy()) {
        let text = write_trajectory_csv(&traj);
        let back = read_trajectory_csv(&text).expect("own output parses");
        prop_assert_eq!(back.len(), traj.len());
        for (a, b) in traj.points().iter().zip(back.points()) {
            prop_assert_eq!(a.t, b.t);
            // CSV prints 6 decimals ≈ 0.11 m at these latitudes.
            prop_assert!(a.point.haversine_m(&b.point) < 0.2);
        }
    }

    #[test]
    fn jsonl_round_trip_is_exact(traj in trajectory_strategy()) {
        let text = write_trajectory_jsonl(&traj);
        let back = read_trajectory_jsonl(&text).expect("own output parses");
        prop_assert_eq!(back, traj);
    }

    #[test]
    fn csv_parser_never_panics_on_arbitrary_text(text in ".{0,400}") {
        // Errors are fine; panics are not.
        let _ = read_trajectory_csv(&text);
        let _ = read_trajectory_jsonl(&text);
    }
}
