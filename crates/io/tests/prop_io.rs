//! Property-based tests: format round-trips over arbitrary trajectories.

use proptest::prelude::*;
use stmaker_geo::GeoPoint;
use stmaker_io::{
    read_model_stc, read_raw_trips_stc, read_trajectory_csv, read_trajectory_jsonl, read_trips_stc,
    write_trajectory_csv, write_trajectory_jsonl, write_trips_stc,
};
use stmaker_trajectory::{RawPoint, RawTrajectory, Timestamp};

fn trajectory_strategy() -> impl Strategy<Value = RawTrajectory> {
    prop::collection::vec((30.0f64..50.0, 100.0f64..130.0, 0i64..600), 2..40).prop_map(|raw| {
        let mut t = 0i64;
        let pts = raw
            .into_iter()
            .map(|(lat, lon, dt)| {
                t += dt;
                RawPoint { point: GeoPoint::new(lat, lon), t: Timestamp(t) }
            })
            .collect();
        RawTrajectory::new(pts)
    })
}

proptest! {
    #[test]
    fn csv_round_trip_preserves_time_and_approximate_position(traj in trajectory_strategy()) {
        let text = write_trajectory_csv(&traj);
        let back = read_trajectory_csv(&text).expect("own output parses");
        prop_assert_eq!(back.len(), traj.len());
        for (a, b) in traj.points().iter().zip(back.points()) {
            prop_assert_eq!(a.t, b.t);
            // CSV prints 6 decimals ≈ 0.11 m at these latitudes.
            prop_assert!(a.point.haversine_m(&b.point) < 0.2);
        }
    }

    #[test]
    fn jsonl_round_trip_is_exact(traj in trajectory_strategy()) {
        let text = write_trajectory_jsonl(&traj);
        let back = read_trajectory_jsonl(&text).expect("own output parses");
        prop_assert_eq!(back, traj);
    }

    #[test]
    fn csv_parser_never_panics_on_arbitrary_text(text in ".{0,400}") {
        // Errors are fine; panics are not.
        let _ = read_trajectory_csv(&text);
        let _ = read_trajectory_jsonl(&text);
    }

    #[test]
    fn stc_round_trip_is_exact(trips in prop::collection::vec(trajectory_strategy(), 0..6)) {
        // The columnar format stores f64 bits and exact timestamps: the
        // round-trip is equality, not approximation — the property the
        // byte-identity contract rests on.
        let bytes = write_trips_stc(&trips);
        let back = read_trips_stc(&bytes).expect("own output decodes");
        prop_assert_eq!(back, trips);
    }

    #[test]
    fn stc_decoder_never_panics_on_arbitrary_bytes(bytes in prop::collection::vec(0u8..=255, 0..512)) {
        let _ = read_raw_trips_stc(&bytes);
        let _ = read_trips_stc(&bytes);
        let _ = read_model_stc(&bytes);
        // Same garbage behind a valid magic, so parsing reaches the header
        // and section-table paths instead of stopping at BadMagic.
        let mut with_magic = b"STC1".to_vec();
        with_magic.extend_from_slice(&bytes);
        let _ = read_raw_trips_stc(&with_magic);
        let _ = read_model_stc(&with_magic);
    }

    #[test]
    fn stc_decoder_never_panics_on_mutated_containers(
        trips in prop::collection::vec(trajectory_strategy(), 1..3),
        flips in prop::collection::vec((0u32..=u32::MAX, 0u8..8), 1..8),
        cut in 0u16..=u16::MAX,
    ) {
        let mut bytes = write_trips_stc(&trips);
        for (pos, bit) in flips {
            let i = pos as usize % bytes.len();
            bytes[i] ^= 1 << bit;
        }
        bytes.truncate(cut as usize % (bytes.len() + 1));
        let _ = read_raw_trips_stc(&bytes);
        let _ = read_trips_stc(&bytes);
        let _ = read_model_stc(&bytes);
    }
}
