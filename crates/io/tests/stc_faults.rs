//! Fault-injection suite for the STC1 columnar container: every corruption
//! of a valid file — truncation at any byte, bit flips anywhere, patched
//! section tables, defective timestamp streams — must surface as a *typed*
//! [`StcError`]/[`StcReadError`] or decode to something valid. Never a
//! panic, never an out-of-bounds read, never unbounded allocation.

use stmaker::TrainedModel;
use stmaker_geo::GeoPoint;
use stmaker_io::{
    read_model_stc, read_raw_trips_stc, read_trips_stc, write_model_stc, write_point_runs_stc,
    write_trips_stc, StcError, StcReadError,
};
use stmaker_poi::LandmarkId;
use stmaker_routes::{HistoricalFeatureMap, PopularRoutes, PopularRoutesParts};
use stmaker_trajectory::{RawPoint, RawTrajectory, Timestamp};

/// Deterministic pseudo-random stream (LCG), the `tests/fault_injection.rs`
/// idiom: reproducible corruption without a test-framework seed.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

fn pt(lat: f64, lon: f64, t: i64) -> RawPoint {
    RawPoint { point: GeoPoint { lat, lon }, t: Timestamp(t) }
}

/// A deterministic multi-trip fixture with varied lengths and time gaps.
fn fixture_trips(seed: u64) -> Vec<RawTrajectory> {
    let mut rng = Lcg(seed);
    (0..5)
        .map(|i| {
            let n = 2 + rng.below(20);
            let mut t = rng.below(100_000) as i64;
            let pts = (0..n)
                .map(|_| {
                    t += 1 + rng.below(600) as i64;
                    let lat = 30.0 + rng.below(2000) as f64 / 100.0; // cast-ok: test fixture coords
                    let lon = 100.0 + rng.below(3000) as f64 / 100.0; // cast-ok: test fixture coords
                    pt(lat, lon, t)
                })
                .collect();
            let _ = i;
            RawTrajectory::new(pts)
        })
        .collect()
}

/// A model fixture exercising every section family: feature rows (numeric
/// and categorical), corpus, pair occurrences, transfers, supports, winners.
fn fixture_model() -> TrainedModel {
    let mut fm = HistoricalFeatureMap::new();
    fm.add_observation(LandmarkId(1), LandmarkId(2), "speed", 31.5);
    fm.add_observation(LandmarkId(1), LandmarkId(2), "speed", 28.25);
    fm.add_observation(LandmarkId(2), LandmarkId(5), "duration", 120.0);
    fm.add_categorical_observation(LandmarkId(1), LandmarkId(2), "road_class", 3);
    fm.add_categorical_observation(LandmarkId(2), LandmarkId(5), "road_class", 1);
    let l = LandmarkId;
    let parts = PopularRoutesParts {
        corpus: vec![vec![l(1), l(2), l(5)], vec![l(1), l(2)], vec![l(2), l(5), l(7)]],
        pairs: vec![
            ((l(1), l(2)), vec![(0, 0, 1), (1, 0, 1)]),
            ((l(1), l(5)), vec![(0, 0, 2)]),
            ((l(2), l(5)), vec![(0, 1, 2), (2, 0, 1)]),
        ],
        transfers: vec![(l(1), vec![(l(2), 2.0)]), (l(2), vec![(l(5), 2.0)])],
        supports: vec![((l(1), l(2)), 2), ((l(1), l(5)), 1), ((l(2), l(5)), 2)],
        winners: vec![((l(1), l(2)), vec![l(1), l(2)]), ((l(2), l(5)), vec![l(2), l(5)])],
        ..PopularRoutesParts::default()
    };
    TrainedModel {
        popular: PopularRoutes::from_parts(parts),
        featmap: fm,
        n_trained: 3,
        registry_len: 11,
    }
}

/// Decoding any prefix of a valid trips container is a typed error or a
/// valid (possibly shorter-padded) success — never a panic. Prefixes that
/// cut into the header or section table must always be errors.
#[test]
fn trips_truncation_sweep_is_typed_at_every_byte() {
    let bytes = write_trips_stc(&fixture_trips(0xFA57));
    assert!(bytes.len() > 64, "fixture too small to exercise truncation");
    for cut in 0..bytes.len() {
        let prefix = &bytes[..cut];
        match read_raw_trips_stc(prefix) {
            Ok(trips) => {
                // Only trailing-padding cuts may still decode; those carry
                // the full payload.
                assert_eq!(trips.len(), 5, "cut {cut} decoded a partial container");
            }
            Err(e) => {
                let msg = e.to_string();
                assert!(!msg.is_empty());
            }
        }
        let _ = read_trips_stc(prefix);
        // Header/table cuts can never succeed.
        if cut < 16 + 4 * 24 {
            assert!(read_raw_trips_stc(prefix).is_err(), "cut {cut} inside the header decoded");
        }
    }
}

/// Same sweep over a model container, against `read_model_stc`.
#[test]
fn model_truncation_sweep_is_typed_at_every_byte() {
    let model = fixture_model();
    let bytes = write_model_stc(&model);
    let canonical = model.to_json();
    for cut in 0..bytes.len() {
        match read_model_stc(&bytes[..cut]) {
            Ok(m) => assert_eq!(m.to_json(), canonical, "cut {cut} decoded a different model"),
            Err(e) => {
                let _ = e.to_string();
            }
        }
    }
    // The untouched bytes still decode canonically after the sweep.
    assert_eq!(read_model_stc(&bytes).unwrap().to_json(), canonical);
}

/// Single-bit flips anywhere in the file: decode is typed-error-or-success,
/// and a success never smuggles structurally impossible data out.
#[test]
fn bit_flip_sweep_never_panics() {
    let trips = fixture_trips(0xBEEF);
    let trip_bytes = write_trips_stc(&trips);
    let model_bytes = write_model_stc(&fixture_model());
    let mut rng = Lcg(0xC0FFEE);
    for _ in 0..600 {
        let mut mutated = trip_bytes.clone();
        let i = rng.below(mutated.len());
        mutated[i] ^= 1 << rng.below(8);
        if let Ok(runs) = read_raw_trips_stc(&mutated) {
            for run in &runs {
                assert!(run.len() <= trip_bytes.len(), "decoded run longer than the file");
            }
        }
        let _ = read_trips_stc(&mutated);

        let mut mutated = model_bytes.clone();
        let i = rng.below(mutated.len());
        mutated[i] ^= 1 << rng.below(8);
        let _ = read_model_stc(&mutated);
    }
}

/// Patching a section-table length to overhang the file is the classic
/// crafted-file attack; it must be the typed `Truncated`, not a slice OOB.
#[test]
fn overhanging_section_length_is_truncated_error() {
    let bytes = write_trips_stc(&fixture_trips(0x5EED));
    // Section table entries: 24 bytes each at offset 16; len lives at +16.
    for entry in 0..4 {
        let len_at = 16 + entry * 24 + 16;
        let mut patched = bytes.clone();
        patched[len_at..len_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(
            matches!(read_raw_trips_stc(&patched), Err(StcError::Truncated { .. })),
            "entry {entry} with absurd len must be Truncated"
        );
    }
}

/// Shortening the latitude column (via its table entry) desynchronizes the
/// columns; the decoder must call that out as a length mismatch, not
/// silently truncate trips.
#[test]
fn shortened_column_is_length_mismatch() {
    let bytes = write_trips_stc(&fixture_trips(0x1234));
    // Entry order is write order: offsets, lat, lon, ts. Shrink lat by one
    // f64 so it no longer matches the offsets column's point count.
    let len_at = 16 + 24 + 16;
    let mut patched = bytes.clone();
    let lat_len = u64::from_le_bytes(patched[len_at..len_at + 8].try_into().unwrap());
    patched[len_at..len_at + 8].copy_from_slice(&(lat_len - 8).to_le_bytes());
    assert!(
        matches!(read_raw_trips_stc(&patched), Err(StcError::ColumnLengthMismatch { .. })),
        "got {:?}",
        read_raw_trips_stc(&patched)
    );
}

/// A timestamp delta that overflows i64 during reconstruction is the typed
/// `TimestampOverflow`. (The encoder wraps, so such a stream is writable —
/// the decoder must refuse to silently wrap it back.)
#[test]
fn timestamp_overflow_is_typed() {
    let run = vec![pt(39.0, 116.0, i64::MAX), pt(39.1, 116.1, i64::MIN)];
    let bytes = write_point_runs_stc([run.as_slice()]);
    assert_eq!(read_raw_trips_stc(&bytes), Err(StcError::TimestampOverflow { trip: 0, index: 1 }));
}

/// Defective-but-representable runs decode leniently and fail strictly with
/// the trip index attached — the sanitize-policy routing contract.
#[test]
fn strict_reader_names_the_defective_trip() {
    let good = vec![pt(39.0, 116.0, 0), pt(39.1, 116.1, 10)];
    let bad = vec![pt(39.0, 116.0, 50), pt(39.1, 116.1, 20)]; // out of order
    let bytes = write_point_runs_stc([good.as_slice(), bad.as_slice()]);
    assert_eq!(read_raw_trips_stc(&bytes).unwrap().len(), 2);
    match read_trips_stc(&bytes) {
        Err(StcReadError::Trip { trip: 1, .. }) => {}
        other => panic!("expected trip 1 error, got {other:?}"),
    }
}

/// The full fixture round-trips exactly — the baseline every corruption
/// test above perturbs from.
#[test]
fn fixtures_round_trip_cleanly() {
    let trips = fixture_trips(0x0DDB);
    assert_eq!(read_trips_stc(&write_trips_stc(&trips)).unwrap(), trips);
    let model = fixture_model();
    let back = read_model_stc(&write_model_stc(&model)).unwrap();
    assert_eq!(back.to_json(), model.to_json());
}
