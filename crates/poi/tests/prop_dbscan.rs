//! Property-based tests for DBSCAN's defining invariants.

use proptest::prelude::*;
use stmaker_geo::GeoPoint;
use stmaker_poi::{dbscan, DbscanParams};

fn base() -> GeoPoint {
    GeoPoint::new(39.9, 116.4)
}

fn points_strategy() -> impl Strategy<Value = Vec<GeoPoint>> {
    prop::collection::vec((0.0f64..360.0, 0.0f64..4_000.0), 0..60)
        .prop_map(|offs| offs.into_iter().map(|(b, d)| base().destination(b, d)).collect())
}

/// Haversine neighbour count (including self), the definition DBSCAN uses.
fn neighbours(points: &[GeoPoint], i: usize, eps: f64) -> usize {
    points.iter().filter(|p| points[i].haversine_m(p) <= eps).count()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn core_points_are_never_noise(pts in points_strategy()) {
        let params = DbscanParams { eps_m: 200.0, min_pts: 3 };
        let (assign, k) = dbscan(&pts, params);
        prop_assert_eq!(assign.len(), pts.len());
        for (i, a) in assign.iter().enumerate() {
            // Use a slightly shrunk eps for the check: the grid index
            // measures planar distance, which can differ from haversine by a
            // hair at the boundary.
            if neighbours(&pts, i, params.eps_m * 0.99) >= params.min_pts {
                prop_assert!(a.is_some(), "core point {i} labelled noise");
            }
        }
        // Cluster ids are compact: 0..k.
        for a in assign.iter().flatten() {
            prop_assert!(*a < k);
        }
    }

    #[test]
    fn noise_points_are_far_from_every_cluster_core(pts in points_strategy()) {
        let params = DbscanParams { eps_m: 200.0, min_pts: 3 };
        let (assign, _) = dbscan(&pts, params);
        for i in 0..pts.len() {
            if assign[i].is_none() {
                // A noise point must not be within eps of any core point
                // (otherwise it would have been absorbed as a border point).
                for j in 0..pts.len() {
                    if assign[j].is_some()
                        && neighbours(&pts, j, params.eps_m) >= params.min_pts
                    {
                        let d = pts[i].haversine_m(&pts[j]);
                        prop_assert!(d > params.eps_m * 0.99,
                            "noise point {i} is {d:.1} m from core {j}");
                    }
                }
            }
        }
    }

    #[test]
    fn deterministic(pts in points_strategy()) {
        let params = DbscanParams::default();
        let (a, ka) = dbscan(&pts, params);
        let (b, kb) = dbscan(&pts, params);
        prop_assert_eq!(a, b);
        prop_assert_eq!(ka, kb);
    }

    #[test]
    fn min_pts_one_clusters_everything(pts in points_strategy()) {
        let (assign, _) = dbscan(&pts, DbscanParams { eps_m: 100.0, min_pts: 1 });
        prop_assert!(assign.iter().all(|a| a.is_some()));
    }
}
