//! The raw Point-Of-Interest model.

use serde::{Deserialize, Serialize};
use stmaker_geo::GeoPoint;

/// Index of a [`Poi`] within its dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PoiId(pub u32);

/// Coarse POI categories, mirroring the kinds of semantic places the paper's
/// summaries name (hotels, parks, hospitals, stations, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PoiCategory {
    Restaurant,
    Hotel,
    Hospital,
    School,
    Park,
    Mall,
    Office,
    Residence,
    Station,
    Scenic,
}

impl PoiCategory {
    /// All categories.
    pub const ALL: [PoiCategory; 10] = [
        PoiCategory::Restaurant,
        PoiCategory::Hotel,
        PoiCategory::Hospital,
        PoiCategory::School,
        PoiCategory::Park,
        PoiCategory::Mall,
        PoiCategory::Office,
        PoiCategory::Residence,
        PoiCategory::Station,
        PoiCategory::Scenic,
    ];

    /// Display noun used when synthesizing POI names.
    pub fn noun(self) -> &'static str {
        match self {
            PoiCategory::Restaurant => "Restaurant",
            PoiCategory::Hotel => "Hotel",
            PoiCategory::Hospital => "Hospital",
            PoiCategory::School => "School",
            PoiCategory::Park => "Park",
            PoiCategory::Mall => "Mall",
            PoiCategory::Office => "Tower",
            PoiCategory::Residence => "Community",
            PoiCategory::Station => "Station",
            PoiCategory::Scenic => "Scenic Area",
        }
    }

    /// Baseline visit attractiveness of the category (relative scale). Public
    /// hubs draw far more check-ins than residences, which gives the HITS
    /// significance its long tail.
    pub fn base_attractiveness(self) -> f64 {
        match self {
            PoiCategory::Station => 5.0,
            PoiCategory::Mall => 4.0,
            PoiCategory::Scenic => 3.5,
            PoiCategory::Park => 3.0,
            PoiCategory::Hospital => 2.5,
            PoiCategory::Hotel => 2.0,
            PoiCategory::Restaurant => 1.8,
            PoiCategory::School => 1.5,
            PoiCategory::Office => 1.2,
            PoiCategory::Residence => 1.0,
        }
    }
}

/// A Point Of Interest: a named place with a location and a popularity prior.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Poi {
    pub id: PoiId,
    pub point: GeoPoint,
    pub name: String,
    pub category: PoiCategory,
    /// Relative popularity prior (≥ 0); feeds check-in generation.
    pub popularity: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_categories_have_nonempty_nouns() {
        for c in PoiCategory::ALL {
            assert!(!c.noun().is_empty());
            assert!(c.base_attractiveness() > 0.0);
        }
    }

    #[test]
    fn stations_outdraw_residences() {
        assert!(
            PoiCategory::Station.base_attractiveness()
                > PoiCategory::Residence.base_attractiveness()
        );
    }
}
