//! DBSCAN over geographic points.
//!
//! A faithful implementation of Ester et al. (KDD'96), the algorithm the
//! paper uses to collapse ~510k raw POIs into ~17k landmark clusters
//! (Sec. VII-A). Neighbourhood queries run against a uniform grid index, so
//! the expected complexity is O(n · points-per-ε-ball).

use stmaker_geo::{GeoPoint, GridIndex};

/// DBSCAN parameters.
#[derive(Debug, Clone, Copy)]
pub struct DbscanParams {
    /// ε-neighbourhood radius in metres.
    pub eps_m: f64,
    /// Minimum neighbourhood size (including the point itself) for a core
    /// point.
    pub min_pts: usize,
}

impl Default for DbscanParams {
    fn default() -> Self {
        // POIs within 150 m merge into one landmark; 3 POIs make a cluster.
        Self { eps_m: 150.0, min_pts: 3 }
    }
}

/// Cluster assignment: `Some(cluster)` or `None` for noise.
pub type Assignment = Option<usize>;

/// Runs DBSCAN on `points`, returning per-point assignments and the number of
/// clusters found. Noise points get `None`.
pub fn dbscan(points: &[GeoPoint], params: DbscanParams) -> (Vec<Assignment>, usize) {
    assert!(params.eps_m > 0.0, "eps must be positive");
    assert!(params.min_pts >= 1, "min_pts must be at least 1");
    let n = points.len();
    if n == 0 {
        return (Vec::new(), 0);
    }

    let index = GridIndex::build(points.iter().copied().enumerate(), params.eps_m);

    const UNVISITED: usize = usize::MAX;
    const NOISE: usize = usize::MAX - 1;
    let mut label = vec![UNVISITED; n];
    let mut cluster = 0usize;

    for i in 0..n {
        if label[i] != UNVISITED {
            continue;
        }
        let neighbours: Vec<usize> =
            index.within_radius(&points[i], params.eps_m).into_iter().map(|(id, _)| id).collect();
        if neighbours.len() < params.min_pts {
            label[i] = NOISE;
            continue;
        }
        // i is a core point: start a new cluster and expand it.
        label[i] = cluster;
        let mut queue: Vec<usize> = neighbours;
        let mut qi = 0;
        while qi < queue.len() {
            let j = queue[qi];
            qi += 1;
            if label[j] == NOISE {
                label[j] = cluster; // border point reached from a core
            }
            if label[j] != UNVISITED {
                continue;
            }
            label[j] = cluster;
            let nbrs: Vec<usize> = index
                .within_radius(&points[j], params.eps_m)
                .into_iter()
                .map(|(id, _)| id)
                .collect();
            if nbrs.len() >= params.min_pts {
                queue.extend(nbrs);
            }
        }
        cluster += 1;
    }

    let assignments = label
        .into_iter()
        .map(|l| if l == NOISE || l == UNVISITED { None } else { Some(l) })
        .collect();
    (assignments, cluster)
}

/// Geometric centroid of each cluster (index = cluster id).
pub fn centroids(
    points: &[GeoPoint],
    assignments: &[Assignment],
    n_clusters: usize,
) -> Vec<GeoPoint> {
    let mut lat = vec![0.0; n_clusters];
    let mut lon = vec![0.0; n_clusters];
    let mut cnt = vec![0usize; n_clusters];
    for (p, a) in points.iter().zip(assignments) {
        if let Some(c) = a {
            lat[*c] += p.lat;
            lon[*c] += p.lon;
            cnt[*c] += 1;
        }
    }
    (0..n_clusters)
        .map(|c| GeoPoint { lat: lat[c] / cnt[c] as f64, lon: lon[c] / cnt[c] as f64 })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> GeoPoint {
        GeoPoint::new(39.9, 116.4)
    }

    /// A blob of `n` points within `radius_m` of `center`, deterministic.
    fn blob(center: GeoPoint, n: usize, radius_m: f64) -> Vec<GeoPoint> {
        (0..n)
            .map(|i| {
                let ang = 360.0 * (i as f64) / (n as f64);
                let r = radius_m * ((i % 5) as f64 + 1.0) / 5.0;
                center.destination(ang, r)
            })
            .collect()
    }

    #[test]
    fn two_far_blobs_give_two_clusters() {
        let mut pts = blob(base(), 12, 60.0);
        pts.extend(blob(base().destination(90.0, 5_000.0), 12, 60.0));
        let (assign, k) = dbscan(&pts, DbscanParams { eps_m: 150.0, min_pts: 3 });
        assert_eq!(k, 2);
        // First blob all one cluster, second all the other.
        let c0 = assign[0].unwrap();
        assert!(assign[..12].iter().all(|a| *a == Some(c0)));
        let c1 = assign[12].unwrap();
        assert_ne!(c0, c1);
        assert!(assign[12..].iter().all(|a| *a == Some(c1)));
    }

    #[test]
    fn isolated_points_are_noise() {
        let mut pts = blob(base(), 10, 50.0);
        pts.push(base().destination(45.0, 10_000.0));
        let (assign, k) = dbscan(&pts, DbscanParams::default());
        assert_eq!(k, 1);
        assert_eq!(assign.last().unwrap(), &None);
    }

    #[test]
    fn min_pts_one_makes_every_point_a_cluster() {
        let pts = vec![base(), base().destination(90.0, 10_000.0)];
        let (assign, k) = dbscan(&pts, DbscanParams { eps_m: 100.0, min_pts: 1 });
        assert_eq!(k, 2);
        assert!(assign.iter().all(|a| a.is_some()));
    }

    #[test]
    fn chain_merges_through_density() {
        // A chain of points 100 m apart with eps 150: all density-connected.
        let pts: Vec<GeoPoint> =
            (0..20).map(|i| base().destination(90.0, 100.0 * i as f64)).collect();
        let (assign, k) = dbscan(&pts, DbscanParams { eps_m: 150.0, min_pts: 2 });
        assert_eq!(k, 1);
        assert!(assign.iter().all(|a| *a == Some(0)));
    }

    #[test]
    fn empty_input() {
        let (assign, k) = dbscan(&[], DbscanParams::default());
        assert!(assign.is_empty());
        assert_eq!(k, 0);
    }

    #[test]
    fn centroids_are_inside_their_blob() {
        let c1 = base();
        let c2 = base().destination(90.0, 5_000.0);
        let mut pts = blob(c1, 15, 80.0);
        pts.extend(blob(c2, 15, 80.0));
        let (assign, k) = dbscan(&pts, DbscanParams::default());
        let cents = centroids(&pts, &assign, k);
        assert_eq!(cents.len(), 2);
        // Each centroid is within the blob radius of its true centre.
        let d1 = cents.iter().map(|c| c.haversine_m(&c1)).fold(f64::MAX, f64::min);
        let d2 = cents.iter().map(|c| c.haversine_m(&c2)).fold(f64::MAX, f64::min);
        assert!(d1 < 80.0, "{d1}");
        assert!(d2 < 80.0, "{d2}");
    }

    #[test]
    fn border_point_is_claimed_not_noise() {
        // Dense core plus one border point within eps of a single core point.
        let mut pts = blob(base(), 8, 40.0);
        pts.push(base().destination(90.0, 140.0)); // within 150 m of centre area
        let (assign, _) = dbscan(&pts, DbscanParams { eps_m: 150.0, min_pts: 4 });
        assert!(assign.last().unwrap().is_some(), "border point should join the cluster");
    }
}
