//! The landmark dataset: POI-cluster centroids merged with turning points.
//!
//! Definition 2 of the paper: "A landmark l is a geographical point in the
//! space, which is stable and independent of trajectories. A landmark can be
//! either a Point Of Interest (POI) or a turning point of the road network."

use crate::cluster::{centroids, dbscan, DbscanParams};
use crate::poi::Poi;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use stmaker_geo::{GeoPoint, GridIndex, RTree, SpatialIndexKind, SpatialStats};

thread_local! {
    /// Reusable per-probe hit scratch for the grid fallback of
    /// [`LandmarkRegistry::candidates_along`], so batch workers stop
    /// allocating a fresh `Vec` per probe point (PR-5 scratch pattern).
    static HIT_SCRATCH: RefCell<Vec<(LandmarkId, f64)>> = const { RefCell::new(Vec::new()) };
}

/// Index of a [`Landmark`] within its [`LandmarkRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LandmarkId(pub u32);

/// What a landmark was built from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LandmarkKind {
    /// Centroid of a DBSCAN cluster of POIs.
    PoiCluster {
        /// Number of POIs merged into this landmark.
        size: usize,
    },
    /// Road-network turning point (intersection).
    TurningPoint,
}

/// A landmark: a stable, trajectory-independent anchor point (Definition 2).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Landmark {
    pub id: LandmarkId,
    pub point: GeoPoint,
    /// Display name used in summaries ("the Haidian Hospital", "Suzhou Road").
    pub name: String,
    pub kind: LandmarkKind,
    /// Significance `l.s ∈ [0, 1]` — how familiar the landmark is to average
    /// people (Sec. IV-B). Assigned by the HITS pass; 0 until then.
    pub significance: f64,
}

/// Grid cell size for the landmark index, in metres (≈ calibration radius).
const LANDMARK_CELL_M: f64 = 300.0;

/// The registry's spatial backend: the packed STR R-tree by default, with the
/// uniform grid kept as a byte-identical escape hatch (`--spatial-index grid`).
#[derive(Debug, Clone)]
enum LandmarkIndex {
    Grid(GridIndex<LandmarkId>),
    Rtree(RTree<LandmarkId>),
}

impl LandmarkIndex {
    fn build(landmarks: &[Landmark], kind: SpatialIndexKind) -> Self {
        let items = landmarks.iter().map(|l| (l.id, l.point));
        match kind {
            SpatialIndexKind::Grid => Self::Grid(GridIndex::build(items, LANDMARK_CELL_M)),
            SpatialIndexKind::Rtree => Self::Rtree(RTree::build_points(items)),
        }
    }

    fn kind(&self) -> SpatialIndexKind {
        match self {
            Self::Grid(_) => SpatialIndexKind::Grid,
            Self::Rtree(_) => SpatialIndexKind::Rtree,
        }
    }
}

/// The merged landmark dataset with spatial lookup.
#[derive(Debug, Clone)]
pub struct LandmarkRegistry {
    landmarks: Vec<Landmark>,
    index: LandmarkIndex,
    /// Maps each input POI to the landmark its cluster produced (noise POIs
    /// map to `None`). Needed to transfer check-ins onto landmarks.
    poi_to_landmark: Vec<Option<LandmarkId>>,
}

impl LandmarkRegistry {
    /// Builds the registry exactly as Sec. VII-A describes: DBSCAN the POIs,
    /// take cluster centroids as landmarks, then add every road turning
    /// point. `turning_points` are `(point, name)` pairs.
    pub fn build(
        pois: &[Poi],
        params: DbscanParams,
        turning_points: impl IntoIterator<Item = (GeoPoint, String)>,
    ) -> Self {
        let points: Vec<GeoPoint> = pois.iter().map(|p| p.point).collect();
        let (assign, k) = dbscan(&points, params);
        let cents = centroids(&points, &assign, k);

        let mut landmarks = Vec::with_capacity(k);
        // Name each cluster after its most popular member POI.
        let mut best_per_cluster: Vec<Option<usize>> = vec![None; k];
        let mut sizes = vec![0usize; k];
        for (i, a) in assign.iter().enumerate() {
            if let Some(c) = a {
                sizes[*c] += 1;
                let better = match best_per_cluster[*c] {
                    None => true,
                    Some(b) => pois[i].popularity > pois[b].popularity,
                };
                if better {
                    best_per_cluster[*c] = Some(i);
                }
            }
        }
        for c in 0..k {
            let name = best_per_cluster[c]
                .map(|i| pois[i].name.clone())
                .unwrap_or_else(|| format!("Cluster {c}"));
            landmarks.push(Landmark {
                id: LandmarkId(landmarks.len() as u32),
                point: cents[c],
                name,
                kind: LandmarkKind::PoiCluster { size: sizes[c] },
                significance: 0.0,
            });
        }

        let cluster_to_landmark: Vec<LandmarkId> = (0..k).map(|c| LandmarkId(c as u32)).collect();
        let poi_to_landmark = assign.iter().map(|a| a.map(|c| cluster_to_landmark[c])).collect();

        for (point, name) in turning_points {
            landmarks.push(Landmark {
                id: LandmarkId(landmarks.len() as u32),
                point,
                name,
                kind: LandmarkKind::TurningPoint,
                significance: 0.0,
            });
        }

        let index = LandmarkIndex::build(&landmarks, SpatialIndexKind::default());
        Self { landmarks, index, poi_to_landmark }
    }

    /// A registry from pre-made landmarks (used by tests and the generator).
    pub fn from_landmarks(mut landmarks: Vec<Landmark>) -> Self {
        for (i, l) in landmarks.iter_mut().enumerate() {
            l.id = LandmarkId(i as u32);
        }
        let index = LandmarkIndex::build(&landmarks, SpatialIndexKind::default());
        Self { landmarks, index, poi_to_landmark: Vec::new() }
    }

    /// Which spatial backend the registry is currently using.
    pub fn index_kind(&self) -> SpatialIndexKind {
        self.index.kind()
    }

    /// Rebuilds the spatial index with the requested backend (no-op if it is
    /// already in use). Both backends answer every query byte-identically;
    /// the grid is kept as the `--spatial-index grid` escape hatch.
    pub fn set_index_kind(&mut self, kind: SpatialIndexKind) {
        if self.index.kind() != kind {
            self.index = LandmarkIndex::build(&self.landmarks, kind);
        }
    }

    /// All landmarks.
    pub fn landmarks(&self) -> &[Landmark] {
        &self.landmarks
    }

    /// Number of landmarks.
    pub fn len(&self) -> usize {
        self.landmarks.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.landmarks.is_empty()
    }

    /// Landmark accessor.
    pub fn get(&self, id: LandmarkId) -> &Landmark {
        &self.landmarks[id.0 as usize]
    }

    /// The landmark produced by POI `poi_idx`'s cluster, if it was not noise.
    /// Only meaningful for registries built with [`LandmarkRegistry::build`].
    pub fn landmark_of_poi(&self, poi_idx: usize) -> Option<LandmarkId> {
        self.poi_to_landmark.get(poi_idx).copied().flatten()
    }

    /// Nearest landmark to `p`.
    pub fn nearest(&self, p: &GeoPoint) -> Option<(LandmarkId, f64)> {
        match &self.index {
            LandmarkIndex::Grid(g) => g.nearest(p),
            LandmarkIndex::Rtree(t) => t.nearest(p),
        }
    }

    /// Landmarks within `radius_m` of `p`.
    ///
    /// Hit order is backend-specific (the grid reports cell-scan order, the
    /// R-tree `(distance, id)` order); callers that need a canonical order
    /// sort, or use [`LandmarkRegistry::k_nearest_within`].
    pub fn within_radius(&self, p: &GeoPoint, radius_m: f64) -> Vec<(LandmarkId, f64)> {
        match &self.index {
            LandmarkIndex::Grid(g) => g.within_radius(p, radius_m),
            LandmarkIndex::Rtree(t) => t.within_radius(p, radius_m),
        }
    }

    /// The `k` landmarks nearest to `p` among those within `radius_m`,
    /// sorted by `(distance, id)` — identical under both backends.
    pub fn k_nearest_within(
        &self,
        p: &GeoPoint,
        k: usize,
        radius_m: f64,
    ) -> Vec<(LandmarkId, f64)> {
        match &self.index {
            LandmarkIndex::Grid(g) => {
                let mut hits = g.within_radius(p, radius_m);
                hits.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
                hits.truncate(k);
                hits
            }
            LandmarkIndex::Rtree(t) => t.k_nearest_within(p, k, radius_m),
        }
    }

    /// Ids of all landmarks within `max_dist_m` of at least one point of
    /// `path`, sorted and deduplicated — calibration's corridor query.
    ///
    /// The R-tree answers this with a single padded-rect traversal plus exact
    /// refinement; the grid falls back to one ring scan per probe point
    /// (through a thread-local scratch, so batch workers do not allocate per
    /// probe). Both produce the identical id set.
    pub fn candidates_along(
        &self,
        path: &[GeoPoint],
        max_dist_m: f64,
        out: &mut Vec<LandmarkId>,
        stats: &mut SpatialStats,
    ) {
        match &self.index {
            LandmarkIndex::Grid(g) => {
                out.clear();
                HIT_SCRATCH.with(|scratch| {
                    let mut hits = scratch.borrow_mut();
                    for p in path {
                        g.within_radius_into(p, max_dist_m, &mut hits);
                        stats.candidates_refined += hits.len() as u64;
                        out.extend(hits.iter().map(|(id, _)| *id));
                    }
                });
                out.sort_unstable();
                out.dedup();
            }
            LandmarkIndex::Rtree(t) => t.along_into(path, max_dist_m, out, stats),
        }
    }

    /// Sets landmark significances (parallel to [`Self::landmarks`] order).
    ///
    /// # Panics
    /// Panics if the slice length mismatches or any value is outside [0, 1].
    pub fn set_significances(&mut self, sig: &[f64]) {
        assert_eq!(sig.len(), self.landmarks.len(), "significance vector length mismatch");
        for (l, s) in self.landmarks.iter_mut().zip(sig) {
            assert!((0.0..=1.0).contains(s), "significance {s} out of [0,1]");
            l.significance = *s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poi::{PoiCategory, PoiId};

    fn poi(i: u32, p: GeoPoint, name: &str, pop: f64) -> Poi {
        Poi {
            id: PoiId(i),
            point: p,
            name: name.into(),
            category: PoiCategory::Mall,
            popularity: pop,
        }
    }

    fn base() -> GeoPoint {
        GeoPoint::new(39.9, 116.4)
    }

    fn sample_registry() -> LandmarkRegistry {
        // Two POI blobs and two turning points.
        let b2 = base().destination(90.0, 4_000.0);
        let mut pois = Vec::new();
        for i in 0..5 {
            pois.push(poi(
                i,
                base().destination(i as f64 * 72.0, 50.0),
                &format!("MallA{i}"),
                i as f64,
            ));
        }
        for i in 0..5 {
            pois.push(poi(
                5 + i,
                b2.destination(i as f64 * 72.0, 50.0),
                &format!("MallB{i}"),
                10.0 - i as f64,
            ));
        }
        let tps = vec![
            (base().destination(0.0, 2_000.0), "Crossing 1".to_string()),
            (base().destination(0.0, 3_000.0), "Crossing 2".to_string()),
        ];
        LandmarkRegistry::build(&pois, DbscanParams::default(), tps)
    }

    #[test]
    fn build_merges_clusters_and_turning_points() {
        let reg = sample_registry();
        assert_eq!(reg.len(), 4); // 2 clusters + 2 turning points
        let clusters = reg
            .landmarks()
            .iter()
            .filter(|l| matches!(l.kind, LandmarkKind::PoiCluster { .. }))
            .count();
        assert_eq!(clusters, 2);
    }

    #[test]
    fn cluster_named_after_most_popular_poi() {
        let reg = sample_registry();
        let names: Vec<&str> = reg.landmarks().iter().map(|l| l.name.as_str()).collect();
        assert!(names.contains(&"MallA4"), "blob A named by max popularity: {names:?}");
        assert!(names.contains(&"MallB0"), "blob B named by max popularity: {names:?}");
    }

    #[test]
    fn poi_to_landmark_mapping_is_consistent() {
        let reg = sample_registry();
        let l0 = reg.landmark_of_poi(0).unwrap();
        for i in 1..5 {
            assert_eq!(reg.landmark_of_poi(i), Some(l0));
        }
        let l5 = reg.landmark_of_poi(5).unwrap();
        assert_ne!(l0, l5);
    }

    #[test]
    fn nearest_and_radius_queries() {
        let reg = sample_registry();
        let (id, d) = reg.nearest(&base()).unwrap();
        assert!(d < 60.0);
        assert!(matches!(reg.get(id).kind, LandmarkKind::PoiCluster { .. }));
        let hits = reg.within_radius(&base(), 2_500.0);
        assert_eq!(hits.len(), 2); // cluster A + Crossing 1
    }

    #[test]
    fn set_significances_updates_all() {
        let mut reg = sample_registry();
        let sig: Vec<f64> = (0..reg.len()).map(|i| i as f64 / 10.0).collect();
        reg.set_significances(&sig);
        for (l, s) in reg.landmarks().iter().zip(&sig) {
            assert_eq!(l.significance, *s);
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn set_significances_rejects_wrong_len() {
        let mut reg = sample_registry();
        reg.set_significances(&[0.5]);
    }

    #[test]
    fn index_backends_answer_identically() {
        let mut reg = sample_registry();
        assert_eq!(reg.index_kind(), SpatialIndexKind::Rtree);
        let probes: Vec<GeoPoint> =
            (0..6).map(|i| base().destination(40.0, 700.0 * i as f64)).collect();

        let near_r = reg.nearest(&base());
        let knn_r = reg.k_nearest_within(&base(), 3, 4_500.0);
        let mut cand_r = Vec::new();
        let mut stats = SpatialStats::default();
        reg.candidates_along(&probes, 2_200.0, &mut cand_r, &mut stats);
        assert!(stats.nodes_visited > 0);

        reg.set_index_kind(SpatialIndexKind::Grid);
        assert_eq!(reg.index_kind(), SpatialIndexKind::Grid);
        assert_eq!(reg.nearest(&base()), near_r);
        assert_eq!(reg.k_nearest_within(&base(), 3, 4_500.0), knn_r);
        let mut cand_g = Vec::new();
        reg.candidates_along(&probes, 2_200.0, &mut cand_g, &mut SpatialStats::default());
        assert_eq!(cand_g, cand_r);
        assert!(!cand_r.is_empty());
    }

    #[test]
    fn from_landmarks_reindexes() {
        let lms = vec![
            Landmark {
                id: LandmarkId(99),
                point: base(),
                name: "X".into(),
                kind: LandmarkKind::TurningPoint,
                significance: 0.0,
            },
            Landmark {
                id: LandmarkId(42),
                point: base().destination(90.0, 100.0),
                name: "Y".into(),
                kind: LandmarkKind::TurningPoint,
                significance: 0.0,
            },
        ];
        let reg = LandmarkRegistry::from_landmarks(lms);
        assert_eq!(reg.get(LandmarkId(0)).name, "X");
        assert_eq!(reg.get(LandmarkId(1)).name, "Y");
    }
}
