//! POIs, DBSCAN clustering and the landmark registry.
//!
//! The paper's landmark dataset (Sec. VII-A) is built from two sources: "the
//! turning point dataset extracted from the commercial map, and the POI
//! dataset of Beijing … We cluster the raw POI dataset into approximately
//! 17,000 clusters using DBSCAN, and use the geometric centers of the
//! clusters as the landmarks."
//!
//! This crate supplies the same machinery:
//!
//! * [`Poi`] / [`PoiCategory`] — the raw POI model;
//! * [`dbscan`] — a faithful DBSCAN [Ester et al., KDD'96] over geographic
//!   points with haversine ε;
//! * [`Landmark`] / [`LandmarkRegistry`] — the merged landmark dataset
//!   (POI-cluster centroids + road-network turning points) with spatial
//!   queries, which every downstream stage (calibration, partitioning,
//!   popular routes, templates) consumes.

pub mod cluster;
pub mod landmark;
pub mod poi;

pub use cluster::{dbscan, DbscanParams};
pub use landmark::{Landmark, LandmarkId, LandmarkKind, LandmarkRegistry};
pub use poi::{Poi, PoiCategory, PoiId};
