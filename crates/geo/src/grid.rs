//! A uniform-grid spatial index for point sets.
//!
//! The paper's pipelines repeatedly ask "which landmarks/POIs/road vertices
//! lie within r metres of here?" over hundreds of thousands of points. A
//! uniform grid with cell size ≈ the typical query radius answers these in
//! O(points-in-neighbourhood) and is trivially correct, which we favour over
//! a more elaborate tree structure.

use crate::{BoundingBox, GeoPoint, LocalFrame};

/// A uniform grid over a bounding box, indexing items by their location.
///
/// `T` is a caller-chosen id (typically a `usize` or newtype index into an
/// external arena).
#[derive(Debug, Clone)]
pub struct GridIndex<T> {
    frame: LocalFrame,
    cell_m: f64,
    cols: usize,
    rows: usize,
    min_x: f64,
    min_y: f64,
    cells: Vec<Vec<(T, GeoPoint)>>,
    len: usize,
}

impl<T: Copy> GridIndex<T> {
    /// Creates an index covering `bbox` with square cells of `cell_m` metres.
    ///
    /// # Panics
    /// Panics if `cell_m` is not strictly positive.
    pub fn new(bbox: BoundingBox, cell_m: f64) -> Self {
        assert!(cell_m > 0.0, "cell size must be positive");
        let frame = LocalFrame::new(bbox.center());
        let (min_x, min_y) = frame.to_xy(&GeoPoint { lat: bbox.min_lat, lon: bbox.min_lon });
        let (max_x, max_y) = frame.to_xy(&GeoPoint { lat: bbox.max_lat, lon: bbox.max_lon });
        let cols = (((max_x - min_x) / cell_m).ceil() as usize).max(1);
        let rows = (((max_y - min_y) / cell_m).ceil() as usize).max(1);
        Self {
            frame,
            cell_m,
            cols,
            rows,
            min_x,
            min_y,
            cells: vec![Vec::new(); cols * rows],
            len: 0,
        }
    }

    /// Builds an index from `(id, point)` pairs, sizing the box to fit.
    pub fn build(items: impl IntoIterator<Item = (T, GeoPoint)>, cell_m: f64) -> Self {
        let items: Vec<(T, GeoPoint)> = items.into_iter().collect();
        let pts: Vec<GeoPoint> = items.iter().map(|(_, p)| *p).collect();
        let bbox = BoundingBox::enclosing(&pts)
            .unwrap_or(BoundingBox::new(GeoPoint::new(0.0, 0.0), GeoPoint::new(0.0, 0.0)))
            .inflate(1e-4);
        let mut idx = Self::new(bbox, cell_m);
        for (id, p) in items {
            idx.insert(id, p);
        }
        idx
    }

    /// Number of indexed items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index holds no items.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn cell_of(&self, p: &GeoPoint) -> (usize, usize) {
        let (x, y) = self.frame.to_xy(p);
        let cx = (((x - self.min_x) / self.cell_m).floor() as i64).clamp(0, self.cols as i64 - 1);
        let cy = (((y - self.min_y) / self.cell_m).floor() as i64).clamp(0, self.rows as i64 - 1);
        (cx as usize, cy as usize)
    }

    /// Inserts an item. Points outside the original box are clamped into the
    /// border cells (they remain findable, with slightly larger scan cost).
    pub fn insert(&mut self, id: T, p: GeoPoint) {
        let (cx, cy) = self.cell_of(&p);
        self.cells[cy * self.cols + cx].push((id, p));
        self.len += 1;
    }

    /// All items within `radius_m` metres of `q`, with their distances.
    pub fn within_radius(&self, q: &GeoPoint, radius_m: f64) -> Vec<(T, f64)> {
        let mut out = Vec::new();
        self.within_radius_into(q, radius_m, &mut out);
        out
    }

    /// Zero-alloc variant of [`GridIndex::within_radius`]: clears and fills
    /// `out` (in cell-scan order, like `within_radius`), so hot loops can
    /// reuse one scratch vector across many probe points.
    pub fn within_radius_into(&self, q: &GeoPoint, radius_m: f64, out: &mut Vec<(T, f64)>) {
        out.clear();
        let (cx, cy) = self.cell_of(q);
        let reach = (radius_m / self.cell_m).ceil() as i64 + 1;
        for dy in -reach..=reach {
            let yy = cy as i64 + dy;
            if yy < 0 || yy >= self.rows as i64 {
                continue;
            }
            for dx in -reach..=reach {
                let xx = cx as i64 + dx;
                if xx < 0 || xx >= self.cols as i64 {
                    continue;
                }
                for (id, p) in &self.cells[yy as usize * self.cols + xx as usize] {
                    let d = self.frame.dist_m(q, p);
                    if d <= radius_m {
                        out.push((*id, d));
                    }
                }
            }
        }
    }

    /// The nearest item to `q`, if any, expanding the ring search until found.
    pub fn nearest(&self, q: &GeoPoint) -> Option<(T, f64)> {
        if self.len == 0 {
            return None;
        }
        let (cx, cy) = self.cell_of(q);
        let max_reach = self.cols.max(self.rows) as i64;
        let mut best: Option<(T, f64)> = None;
        for reach in 0..=max_reach {
            // Scan the square ring at distance `reach`.
            for dy in -reach..=reach {
                for dx in -reach..=reach {
                    if dx.abs() != reach && dy.abs() != reach {
                        continue; // interior already scanned in earlier rings
                    }
                    let (xx, yy) = (cx as i64 + dx, cy as i64 + dy);
                    if xx < 0 || yy < 0 || xx >= self.cols as i64 || yy >= self.rows as i64 {
                        continue;
                    }
                    for (id, p) in &self.cells[yy as usize * self.cols + xx as usize] {
                        let d = self.frame.dist_m(q, p);
                        if best.map(|(_, bd)| d < bd).unwrap_or(true) {
                            best = Some((*id, d));
                        }
                    }
                }
            }
            // Once something is found, one extra ring guarantees correctness
            // (a closer point can hide in the next ring's corner only).
            if let Some((_, bd)) = best {
                if bd <= (reach as f64) * self.cell_m {
                    break;
                }
            }
        }
        best
    }

    /// `k` nearest items, closest first. Returns fewer if the index is small.
    pub fn k_nearest(&self, q: &GeoPoint, k: usize) -> Vec<(T, f64)> {
        if k == 0 || self.len == 0 {
            return Vec::new();
        }
        // Expand the radius until k hits are collected or the search provably
        // covers every indexed item: the stopping bound must include both the
        // grid's own diagonal and the query's distance to the grid (queries
        // can lie far outside the indexed bounding box).
        let (qx, qy) = self.frame.to_xy(q);
        let grid_w = self.cols as f64 * self.cell_m;
        let grid_h = self.rows as f64 * self.cell_m;
        let dist_to_grid_origin = ((qx - self.min_x).powi(2) + (qy - self.min_y).powi(2)).sqrt();
        let max_span = dist_to_grid_origin + grid_w.hypot(grid_h) + self.cell_m;
        let mut radius = self.cell_m;
        loop {
            let mut hits = self.within_radius(q, radius);
            if hits.len() >= k || radius > max_span {
                hits.sort_by(|a, b| a.1.total_cmp(&b.1));
                hits.truncate(k);
                return hits;
            }
            radius *= 2.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> GeoPoint {
        GeoPoint::new(39.9, 116.4)
    }

    fn grid_with_line_of_points() -> GridIndex<usize> {
        // Points every 100 m going east.
        let items: Vec<(usize, GeoPoint)> =
            (0..50).map(|i| (i, base().destination(90.0, 100.0 * i as f64))).collect();
        GridIndex::build(items, 250.0)
    }

    #[test]
    fn within_radius_counts_expected_points() {
        let g = grid_with_line_of_points();
        let hits = g.within_radius(&base(), 450.0);
        // Points at 0, 100, 200, 300, 400 m.
        assert_eq!(hits.len(), 5);
        assert!(hits.iter().all(|(_, d)| *d <= 450.0));
    }

    #[test]
    fn within_radius_empty_when_far() {
        let g = grid_with_line_of_points();
        let far = base().destination(0.0, 100_000.0);
        assert!(g.within_radius(&far, 500.0).is_empty());
    }

    #[test]
    fn nearest_finds_true_nearest() {
        let g = grid_with_line_of_points();
        let q = base().destination(90.0, 1_730.0);
        let (id, d) = g.nearest(&q).unwrap();
        assert_eq!(id, 17); // 1700 m point is 30 m away
        assert!((d - 30.0).abs() < 1.0);
    }

    #[test]
    fn nearest_on_empty_is_none() {
        let g: GridIndex<usize> = GridIndex::build(Vec::new(), 100.0);
        assert!(g.nearest(&base()).is_none());
    }

    #[test]
    fn nearest_works_for_far_query_outside_box() {
        let g = grid_with_line_of_points();
        let q = base().destination(270.0, 5_000.0); // far west of all points
        let (id, _) = g.nearest(&q).unwrap();
        assert_eq!(id, 0);
    }

    #[test]
    fn k_nearest_sorted_and_capped() {
        let g = grid_with_line_of_points();
        let q = base().destination(90.0, 510.0);
        let hits = g.k_nearest(&q, 3);
        assert_eq!(hits.len(), 3);
        assert_eq!(hits[0].0, 5);
        assert!(hits[0].1 <= hits[1].1 && hits[1].1 <= hits[2].1);
    }

    #[test]
    fn k_nearest_with_small_index_returns_all() {
        let g = GridIndex::build(vec![(7usize, base())], 100.0);
        let hits = g.k_nearest(&base(), 5);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, 7);
    }

    #[test]
    fn k_nearest_from_far_outside_the_box_still_finds_items() {
        let g = grid_with_line_of_points();
        let q = base().destination(0.0, 60_000.0); // 60 km away
        let hits = g.k_nearest(&q, 3);
        assert_eq!(hits.len(), 3, "far queries must still terminate with results");
    }

    #[test]
    fn insert_outside_box_is_still_findable() {
        let mut g =
            GridIndex::new(BoundingBox::new(base(), base().destination(45.0, 1000.0)), 100.0);
        let outside = base().destination(225.0, 3_000.0);
        g.insert(99usize, outside);
        let (id, d) = g.nearest(&outside).unwrap();
        assert_eq!(id, 99);
        // Clamped into a border cell: the stored point is exact, distance 0.
        assert!(d < 1e-6);
    }
}
