//! Polylines: ordered point sequences with arc-length and projection queries.

use crate::{GeoPoint, LocalFrame};
use serde::{Deserialize, Serialize};

/// The result of projecting a point onto a [`Polyline`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolyProjection {
    /// Index of the segment (`points[i]`–`points[i+1]`) holding the foot.
    pub segment: usize,
    /// Position of the foot within that segment, `[0, 1]`.
    pub t: f64,
    /// Distance from the query point to the foot, metres.
    pub distance_m: f64,
    /// Arc length from the start of the polyline to the foot, metres.
    pub arc_m: f64,
}

/// An ordered sequence of geographic points.
///
/// Calibration projects candidate landmarks onto the raw trajectory's
/// polyline and orders them by arc length; the road builder and the workload
/// generator use resampling to synthesize GPS points along routes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Polyline {
    points: Vec<GeoPoint>,
}

impl Polyline {
    /// Creates a polyline. At least one point is required.
    ///
    /// # Panics
    /// Panics on an empty point list.
    pub fn new(points: Vec<GeoPoint>) -> Self {
        assert!(!points.is_empty(), "polyline must have at least one point");
        Self { points }
    }

    /// The underlying points.
    pub fn points(&self) -> &[GeoPoint] {
        &self.points
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the polyline has exactly one vertex (zero length).
    pub fn is_empty(&self) -> bool {
        false // by construction never empty; kept for API symmetry
    }

    /// Total arc length in metres (haversine over consecutive vertices).
    pub fn length_m(&self) -> f64 {
        self.points.windows(2).map(|w| w[0].haversine_m(&w[1])).sum()
    }

    /// Cumulative arc length at every vertex; `out[0] == 0`.
    pub fn cumulative_m(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.points.len());
        let mut acc = 0.0;
        out.push(0.0);
        for w in self.points.windows(2) {
            acc += w[0].haversine_m(&w[1]);
            out.push(acc);
        }
        out
    }

    /// Projects `p` onto the polyline, returning the nearest foot across all
    /// segments. A single-vertex polyline projects everything onto that vertex.
    pub fn project(&self, frame: &LocalFrame, p: &GeoPoint) -> PolyProjection {
        if self.points.len() == 1 {
            return PolyProjection {
                segment: 0,
                t: 0.0,
                distance_m: frame.dist_m(p, &self.points[0]),
                arc_m: 0.0,
            };
        }
        // Single pass: accumulate arc length as we scan so no cumulative
        // vector is allocated per call (projection is the hot loop of
        // calibration and map matching).
        let mut best = PolyProjection { segment: 0, t: 0.0, distance_m: f64::INFINITY, arc_m: 0.0 };
        let mut arc_before = 0.0;
        for (i, w) in self.points.windows(2).enumerate() {
            let seg_len = w[0].haversine_m(&w[1]);
            let (t, d) = frame.project_onto_segment(p, &w[0], &w[1]);
            if d < best.distance_m {
                best = PolyProjection {
                    segment: i,
                    t,
                    distance_m: d,
                    arc_m: arc_before + t * seg_len,
                };
            }
            arc_before += seg_len;
        }
        best
    }

    /// The point at arc length `arc_m` from the start (clamped to the ends).
    pub fn point_at(&self, arc_m: f64) -> GeoPoint {
        if self.points.len() == 1 || arc_m <= 0.0 {
            return self.points[0];
        }
        let cum = self.cumulative_m();
        let total = cum.last().copied().unwrap_or(0.0);
        if arc_m >= total {
            return self.points[self.points.len() - 1];
        }
        // Binary search for the segment containing arc_m.
        let mut i = match cum.binary_search_by(|c| c.total_cmp(&arc_m)) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        i = i.min(self.points.len() - 2);
        let seg_len = cum[i + 1] - cum[i];
        let t = if seg_len == 0.0 { 0.0 } else { (arc_m - cum[i]) / seg_len };
        self.points[i].lerp(&self.points[i + 1], t)
    }

    /// Resamples the polyline at a fixed arc-length `step_m`, always including
    /// the first and last vertices.
    pub fn resample(&self, step_m: f64) -> Polyline {
        assert!(step_m > 0.0, "step must be positive");
        let total = self.length_m();
        if total == 0.0 {
            return Polyline::new(vec![self.points[0]]);
        }
        let n = (total / step_m).floor() as usize;
        let mut pts = Vec::with_capacity(n + 2);
        for i in 0..=n {
            pts.push(self.point_at(i as f64 * step_m));
        }
        let last = self.points[self.points.len() - 1];
        if pts.last().map(|p| p.haversine_m(&last) > 1e-6).unwrap_or(true) {
            pts.push(last);
        }
        Polyline::new(pts)
    }

    /// Concatenates `self` with `other`, dropping a duplicated join vertex.
    pub fn join(&self, other: &Polyline) -> Polyline {
        let mut pts = self.points.clone();
        let mut rest = other.points.as_slice();
        if let (Some(a), Some(b)) = (pts.last(), rest.first()) {
            if a.haversine_m(b) < 1e-6 {
                rest = &rest[1..];
            }
        }
        pts.extend_from_slice(rest);
        Polyline::new(pts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn origin() -> GeoPoint {
        GeoPoint::new(39.9, 116.4)
    }

    /// An L-shaped line: 1 km east, then 1 km north.
    fn l_shape() -> Polyline {
        let a = origin();
        let b = a.destination(90.0, 1000.0);
        let c = b.destination(0.0, 1000.0);
        Polyline::new(vec![a, b, c])
    }

    #[test]
    fn length_of_l_shape() {
        let l = l_shape().length_m();
        assert!((l - 2000.0).abs() < 1.0, "{l}");
    }

    #[test]
    fn cumulative_is_monotone() {
        let cum = l_shape().cumulative_m();
        assert_eq!(cum[0], 0.0);
        assert!(cum.windows(2).all(|w| w[1] >= w[0]));
        assert!((cum[2] - 2000.0).abs() < 1.0);
    }

    #[test]
    fn point_at_handles_clamps_and_interior() {
        let pl = l_shape();
        let start = pl.point_at(-5.0);
        assert_eq!(start, pl.points()[0]);
        let end = pl.point_at(1e9);
        assert_eq!(end, *pl.points().last().unwrap());
        let mid = pl.point_at(500.0);
        assert!(pl.points()[0].haversine_m(&mid) - 500.0 < 1.0);
    }

    #[test]
    fn project_interior_point() {
        let pl = l_shape();
        let frame = LocalFrame::new(origin());
        // 300 m east, 40 m north of the first leg.
        let q = origin().destination(90.0, 300.0).destination(0.0, 40.0);
        let proj = pl.project(&frame, &q);
        assert_eq!(proj.segment, 0);
        assert!((proj.arc_m - 300.0).abs() < 2.0, "arc {}", proj.arc_m);
        assert!((proj.distance_m - 40.0).abs() < 1.0);
    }

    #[test]
    fn project_prefers_second_segment_when_closer() {
        let pl = l_shape();
        let frame = LocalFrame::new(origin());
        let corner = origin().destination(90.0, 1000.0);
        let q = corner.destination(0.0, 600.0).destination(90.0, 25.0);
        let proj = pl.project(&frame, &q);
        assert_eq!(proj.segment, 1);
        assert!((proj.arc_m - 1600.0).abs() < 3.0, "arc {}", proj.arc_m);
        assert!((proj.distance_m - 25.0).abs() < 1.0);
    }

    #[test]
    fn project_single_vertex_line() {
        let pl = Polyline::new(vec![origin()]);
        let frame = LocalFrame::new(origin());
        let q = origin().destination(45.0, 120.0);
        let proj = pl.project(&frame, &q);
        assert_eq!(proj.segment, 0);
        assert!((proj.distance_m - 120.0).abs() < 1.0);
        assert_eq!(proj.arc_m, 0.0);
    }

    #[test]
    fn resample_spacing_and_endpoints() {
        let pl = l_shape();
        let rs = pl.resample(100.0);
        assert_eq!(rs.points()[0], pl.points()[0]);
        assert!(rs.points().last().unwrap().haversine_m(pl.points().last().unwrap()) < 0.01);
        // Each consecutive pair is at most ~100 m apart.
        for w in rs.points().windows(2) {
            assert!(w[0].haversine_m(&w[1]) <= 101.0);
        }
        // Length is preserved: resampling an L keeps both legs.
        assert!((rs.length_m() - pl.length_m()).abs() < 2.0);
    }

    #[test]
    fn resample_zero_length_line() {
        let pl = Polyline::new(vec![origin(), origin()]);
        let rs = pl.resample(10.0);
        assert_eq!(rs.len(), 1);
    }

    #[test]
    fn join_drops_duplicate_vertex() {
        let a = origin();
        let b = a.destination(90.0, 500.0);
        let c = b.destination(90.0, 500.0);
        let p1 = Polyline::new(vec![a, b]);
        let p2 = Polyline::new(vec![b, c]);
        let joined = p1.join(&p2);
        assert_eq!(joined.len(), 3);
        assert!((joined.length_m() - 1000.0).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_polyline_rejected() {
        Polyline::new(vec![]);
    }
}
