//! Packed STR (Sort-Tile-Recursive) R-tree over points and segments.
//!
//! The tree is bulk-loaded once into flat arrays — entry coordinates live in
//! parallel `Vec<f64>` columns and nodes in a single `Vec<Node>` — so queries
//! walk contiguous memory with no per-node boxing. Entries are either points
//! (degenerate segments with `a == b`) or road-edge style segments; both are
//! refined with the exact same planar arithmetic `LocalFrame` uses, so swapping
//! a [`GridIndex`](crate::GridIndex) for an [`RTree`] never changes a reported
//! distance by even one ULP.
//!
//! Determinism contract: the build canonicalises entry order (center-x,
//! center-y, id, endpoints) before tiling, so the packed layout — and therefore
//! every traversal — is independent of input order. All multi-result queries
//! return hits sorted by `(distance, id)` (via `total_cmp`), and `bbox` returns
//! ids sorted and deduplicated, so results are reproducible byte-for-byte.

use crate::bbox::BoundingBox;
use crate::point::{GeoPoint, LocalFrame};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Which spatial index backend a pipeline stage should use.
///
/// The two backends are required to produce byte-identical candidate sets and
/// summaries; `Grid` is kept as an escape hatch (`--spatial-index grid` on the
/// CLI) and as the reference implementation for the identity benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SpatialIndexKind {
    /// Uniform-cell grid (`GridIndex`), the original backend.
    Grid,
    /// Packed STR R-tree (`RTree`), the default.
    #[default]
    Rtree,
}

impl std::str::FromStr for SpatialIndexKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "grid" => Ok(Self::Grid),
            "rtree" => Ok(Self::Rtree),
            other => Err(format!("unknown spatial index '{other}' (expected rtree|grid)")),
        }
    }
}

impl std::fmt::Display for SpatialIndexKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Grid => f.write_str("grid"),
            Self::Rtree => f.write_str("rtree"),
        }
    }
}

/// Work counters for spatial-index queries (`spatial.*` obs metrics).
///
/// Threaded by `&mut` through query calls; callers fold them into a
/// [`Recorder`] as plain counters, which keeps the index `Clone` and the
/// counts deterministic (no atomics, no cross-thread interleaving).
#[derive(Debug, Default, Clone, Copy)]
pub struct SpatialStats {
    /// Tree nodes (internal + leaf) popped during traversal.
    pub nodes_visited: u64,
    /// Leaf nodes whose entries were scanned.
    pub leaves_scanned: u64,
    /// Entries refined with an exact distance computation.
    pub candidates_refined: u64,
}

impl SpatialStats {
    /// Accumulates another stats block into this one.
    pub fn merge(&mut self, other: &SpatialStats) {
        self.nodes_visited += other.nodes_visited;
        self.leaves_scanned += other.leaves_scanned;
        self.candidates_refined += other.candidates_refined;
    }
}

/// Entries per leaf and max children per internal node.
const NODE_CAP: usize = 16;

/// One packed tree node: an MBR plus a `[first, first+count)` range that
/// indexes entries (leaf) or child nodes (internal).
#[derive(Debug, Clone, Copy)]
struct Node {
    min_x: f64,
    min_y: f64,
    max_x: f64,
    max_y: f64,
    first: u32,
    count: u32,
    leaf: bool,
}

/// A packed STR-bulk-loaded R-tree over point or segment entries.
///
/// Built once via [`RTree::build_points`] or [`RTree::build_segments`];
/// immutable afterwards. The planar frame is constructed with exactly the
/// recipe `GridIndex::build` uses (enclosing bbox of all endpoints, inflated
/// by `1e-4` degrees, frame at its center), so distances reported by the two
/// backends are bit-identical.
#[derive(Debug, Clone)]
pub struct RTree<T> {
    frame: LocalFrame,
    ids: Vec<T>,
    ax: Vec<f64>,
    ay: Vec<f64>,
    bx: Vec<f64>,
    by: Vec<f64>,
    nodes: Vec<Node>,
    root: u32,
}

/// Min-heap item for best-first traversal (ordered by distance, then node id
/// for full determinism; `BinaryHeap` is a max-heap, so `Ord` is reversed).
struct HeapEntry {
    dist: f64,
    node: u32,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: smallest distance (then smallest node index) pops first.
        other.dist.total_cmp(&self.dist).then_with(|| other.node.cmp(&self.node))
    }
}

impl<T: Copy + Ord> RTree<T> {
    /// Bulk-loads a tree of point entries.
    pub fn build_points(items: impl IntoIterator<Item = (T, GeoPoint)>) -> Self {
        Self::build_segments(items.into_iter().map(|(id, p)| (id, p, p)))
    }

    /// Bulk-loads a tree of segment entries (`a`–`b` in geographic space).
    /// Point entries are just degenerate segments with `a == b`.
    pub fn build_segments(items: impl IntoIterator<Item = (T, GeoPoint, GeoPoint)>) -> Self {
        let items: Vec<(T, GeoPoint, GeoPoint)> = items.into_iter().collect();
        // Frame recipe mirrors GridIndex::build so planar distances agree
        // bit-for-bit between the two backends.
        let mut pts: Vec<GeoPoint> = Vec::with_capacity(items.len() * 2);
        for (_, a, b) in &items {
            pts.push(*a);
            pts.push(*b);
        }
        let bbox = BoundingBox::enclosing(&pts)
            .unwrap_or(BoundingBox::new(GeoPoint::new(0.0, 0.0), GeoPoint::new(0.0, 0.0)))
            .inflate(1e-4);
        let frame = LocalFrame::new(bbox.center());

        struct Entry<T> {
            id: T,
            ax: f64,
            ay: f64,
            bx: f64,
            by: f64,
            cx: f64,
            cy: f64,
        }
        let mut entries: Vec<Entry<T>> = items
            .into_iter()
            .map(|(id, a, b)| {
                let (ax, ay) = frame.to_xy(&a);
                let (bx, by) = frame.to_xy(&b);
                Entry { id, ax, ay, bx, by, cx: (ax + bx) * 0.5, cy: (ay + by) * 0.5 }
            })
            .collect();
        // Canonical order: the packed layout must not depend on input order.
        let canon = |e: &Entry<T>| (e.cx, e.cy, e.id, e.ax, e.ay, e.bx, e.by);
        entries.sort_unstable_by(|p, q| {
            let (a, b) = (canon(p), canon(q));
            a.0.total_cmp(&b.0)
                .then(a.1.total_cmp(&b.1))
                .then(a.2.cmp(&b.2))
                .then(a.3.total_cmp(&b.3))
                .then(a.4.total_cmp(&b.4))
                .then(a.5.total_cmp(&b.5))
                .then(a.6.total_cmp(&b.6))
        });

        // STR tiling: entries are sorted by center-x; carve them into vertical
        // slices of `slice_len` entries, re-sort each slice by center-y, and
        // cut leaves of NODE_CAP entries from each slice.
        let n = entries.len();
        let n_leaves = n.div_ceil(NODE_CAP).max(1);
        let slices = (n_leaves as f64).sqrt().ceil() as usize;
        let slice_len = slices.max(1) * NODE_CAP;
        for slice in entries.chunks_mut(slice_len.max(1)) {
            slice.sort_unstable_by(|p, q| {
                let (a, b) = (canon(p), canon(q));
                a.1.total_cmp(&b.1)
                    .then(a.0.total_cmp(&b.0))
                    .then(a.2.cmp(&b.2))
                    .then(a.3.total_cmp(&b.3))
                    .then(a.4.total_cmp(&b.4))
                    .then(a.5.total_cmp(&b.5))
                    .then(a.6.total_cmp(&b.6))
            });
        }

        let mut tree = RTree {
            frame,
            ids: Vec::with_capacity(n),
            ax: Vec::with_capacity(n),
            ay: Vec::with_capacity(n),
            bx: Vec::with_capacity(n),
            by: Vec::with_capacity(n),
            nodes: Vec::new(),
            root: 0,
        };
        for e in &entries {
            tree.ids.push(e.id);
            tree.ax.push(e.ax);
            tree.ay.push(e.ay);
            tree.bx.push(e.bx);
            tree.by.push(e.by);
        }
        if n == 0 {
            return tree;
        }

        // Leaf level: one node per NODE_CAP consecutive entries.
        let mut first_entry = 0usize;
        while first_entry < n {
            let count = NODE_CAP.min(n - first_entry);
            let mut node = Node {
                min_x: f64::INFINITY,
                min_y: f64::INFINITY,
                max_x: f64::NEG_INFINITY,
                max_y: f64::NEG_INFINITY,
                first: first_entry as u32, // cast-ok: entry counts fit u32
                count: count as u32,       // cast-ok: <= NODE_CAP
                leaf: true,
            };
            for i in first_entry..first_entry + count {
                node.min_x = node.min_x.min(tree.ax[i]).min(tree.bx[i]);
                node.min_y = node.min_y.min(tree.ay[i]).min(tree.by[i]);
                node.max_x = node.max_x.max(tree.ax[i]).max(tree.bx[i]);
                node.max_y = node.max_y.max(tree.ay[i]).max(tree.by[i]);
            }
            tree.nodes.push(node);
            first_entry += count;
        }

        // Upper levels: pack each run of NODE_CAP nodes under one parent
        // until a single root remains.
        let mut level_start = 0usize;
        let mut level_len = tree.nodes.len();
        while level_len > 1 {
            let next_start = tree.nodes.len();
            let mut child = level_start;
            let level_end = level_start + level_len;
            while child < level_end {
                let count = NODE_CAP.min(level_end - child);
                let mut node = Node {
                    min_x: f64::INFINITY,
                    min_y: f64::INFINITY,
                    max_x: f64::NEG_INFINITY,
                    max_y: f64::NEG_INFINITY,
                    first: child as u32, // cast-ok: node counts fit u32
                    count: count as u32, // cast-ok: <= NODE_CAP
                    leaf: false,
                };
                for c in child..child + count {
                    let cn = tree.nodes[c];
                    node.min_x = node.min_x.min(cn.min_x);
                    node.min_y = node.min_y.min(cn.min_y);
                    node.max_x = node.max_x.max(cn.max_x);
                    node.max_y = node.max_y.max(cn.max_y);
                }
                tree.nodes.push(node);
                child += count;
            }
            level_start = next_start;
            level_len = tree.nodes.len() - next_start;
        }
        tree.root = (tree.nodes.len() - 1) as u32; // cast-ok: node counts fit u32
        tree
    }

    /// Number of entries in the tree.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the tree has no entries.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The planar frame the tree measures distances in (same recipe as
    /// `GridIndex::build`: enclosing bbox inflated by 1e-4 deg, centered).
    pub fn frame(&self) -> &LocalFrame {
        &self.frame
    }

    /// Exact planar distance from `(qx, qy)` to entry `i`, using the same
    /// float expressions as `LocalFrame::project_onto_segment` /
    /// `LocalFrame::dist_m` so refinement is bit-identical to the grid path.
    #[inline]
    fn entry_dist(&self, i: usize, qx: f64, qy: f64) -> f64 {
        let (ax, ay, bx, by) = (self.ax[i], self.ay[i], self.bx[i], self.by[i]);
        let (dx, dy) = (bx - ax, by - ay);
        let len2 = dx * dx + dy * dy;
        let t = if len2 == 0.0 {
            0.0
        } else {
            (((qx - ax) * dx + (qy - ay) * dy) / len2).clamp(0.0, 1.0)
        };
        let (fx, fy) = (ax + t * dx, ay + t * dy);
        ((qx - fx).powi(2) + (qy - fy).powi(2)).sqrt()
    }

    /// Lower bound on the distance from `(qx, qy)` to anything inside `node`'s
    /// MBR. Shares the subtraction/square/sqrt shape with `entry_dist` so a
    /// point entry sitting on the MBR boundary gets the identical value —
    /// pruning with `mindist > r` can never drop an in-radius entry.
    #[inline]
    fn mindist(node: &Node, qx: f64, qy: f64) -> f64 {
        let dx = (node.min_x - qx).max(qx - node.max_x).max(0.0);
        let dy = (node.min_y - qy).max(qy - node.max_y).max(0.0);
        (dx.powi(2) + dy.powi(2)).sqrt()
    }

    /// All entries within `radius_m` of `q`, as `(id, distance_m)` sorted by
    /// `(distance, id)`.
    pub fn within_radius(&self, q: &GeoPoint, radius_m: f64) -> Vec<(T, f64)> {
        let mut out = Vec::new();
        let mut stats = SpatialStats::default();
        self.within_radius_into(q, radius_m, &mut out, &mut stats);
        out
    }

    /// Zero-alloc variant of [`RTree::within_radius`]: clears and fills `out`,
    /// accumulating traversal counters into `stats`.
    pub fn within_radius_into(
        &self,
        q: &GeoPoint,
        radius_m: f64,
        out: &mut Vec<(T, f64)>,
        stats: &mut SpatialStats,
    ) {
        out.clear();
        if self.is_empty() {
            return;
        }
        let (qx, qy) = self.frame.to_xy(q);
        let mut stack = vec![self.root];
        while let Some(ni) = stack.pop() {
            stats.nodes_visited += 1;
            let node = self.nodes[ni as usize];
            if Self::mindist(&node, qx, qy) > radius_m {
                continue;
            }
            if node.leaf {
                stats.leaves_scanned += 1;
                for i in node.first as usize..(node.first + node.count) as usize {
                    stats.candidates_refined += 1;
                    let d = self.entry_dist(i, qx, qy);
                    if d <= radius_m {
                        out.push((self.ids[i], d));
                    }
                }
            } else {
                for c in node.first..node.first + node.count {
                    stack.push(c);
                }
            }
        }
        out.sort_unstable_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    }

    /// Ids of all entries whose MBR intersects `b` (point entries: point in
    /// rect), sorted and deduplicated.
    pub fn bbox(&self, b: &BoundingBox) -> Vec<T> {
        let mut out = Vec::new();
        let mut stats = SpatialStats::default();
        self.bbox_into(b, &mut out, &mut stats);
        out
    }

    /// Zero-alloc variant of [`RTree::bbox`]: clears and fills `out` with
    /// sorted, deduplicated ids.
    pub fn bbox_into(&self, b: &BoundingBox, out: &mut Vec<T>, stats: &mut SpatialStats) {
        out.clear();
        if self.is_empty() {
            return;
        }
        // to_xy is monotone in lat and lon, so the geographic rect maps to a
        // planar rect spanned by the images of its corners.
        let (min_x, min_y) = self.frame.to_xy(&GeoPoint { lat: b.min_lat, lon: b.min_lon });
        let (max_x, max_y) = self.frame.to_xy(&GeoPoint { lat: b.max_lat, lon: b.max_lon });
        self.rect_into(min_x, min_y, max_x, max_y, out, stats);
        out.sort_unstable();
        out.dedup();
    }

    /// Pushes ids of entries whose MBR intersects the planar rect (no clear,
    /// no sort — callers canonicalise).
    fn rect_into(
        &self,
        min_x: f64,
        min_y: f64,
        max_x: f64,
        max_y: f64,
        out: &mut Vec<T>,
        stats: &mut SpatialStats,
    ) {
        let mut stack = vec![self.root];
        while let Some(ni) = stack.pop() {
            stats.nodes_visited += 1;
            let node = self.nodes[ni as usize];
            if node.min_x > max_x || node.max_x < min_x || node.min_y > max_y || node.max_y < min_y
            {
                continue;
            }
            if node.leaf {
                stats.leaves_scanned += 1;
                for i in node.first as usize..(node.first + node.count) as usize {
                    let (e_min_x, e_max_x) =
                        (self.ax[i].min(self.bx[i]), self.ax[i].max(self.bx[i]));
                    let (e_min_y, e_max_y) =
                        (self.ay[i].min(self.by[i]), self.ay[i].max(self.by[i]));
                    if e_min_x <= max_x && e_max_x >= min_x && e_min_y <= max_y && e_max_y >= min_y
                    {
                        out.push(self.ids[i]);
                    }
                }
            } else {
                for c in node.first..node.first + node.count {
                    stack.push(c);
                }
            }
        }
    }

    /// The entry nearest to `q` (smallest distance; ties broken by smaller
    /// id), or `None` for an empty tree.
    pub fn nearest(&self, q: &GeoPoint) -> Option<(T, f64)> {
        let mut stats = SpatialStats::default();
        self.nearest_stats(q, &mut stats)
    }

    /// [`RTree::nearest`] with traversal counters.
    pub fn nearest_stats(&self, q: &GeoPoint, stats: &mut SpatialStats) -> Option<(T, f64)> {
        let mut out: Vec<(T, f64)> = Vec::with_capacity(1);
        self.k_nearest_within_into(q, 1, f64::INFINITY, &mut out, stats);
        out.first().copied()
    }

    /// The `k` entries nearest to `q`, sorted by `(distance, id)`.
    pub fn k_nearest(&self, q: &GeoPoint, k: usize) -> Vec<(T, f64)> {
        let mut out = Vec::new();
        let mut stats = SpatialStats::default();
        self.k_nearest_within_into(q, k, f64::INFINITY, &mut out, &mut stats);
        out
    }

    /// Zero-alloc variant of [`RTree::k_nearest`].
    pub fn k_nearest_into(
        &self,
        q: &GeoPoint,
        k: usize,
        out: &mut Vec<(T, f64)>,
        stats: &mut SpatialStats,
    ) {
        self.k_nearest_within_into(q, k, f64::INFINITY, out, stats);
    }

    /// The `k` entries nearest to `q` among those within `radius_m`, sorted
    /// by `(distance, id)` — the bounded-kNN primitive the semantic layer's
    /// nearby-landmark lookup uses.
    pub fn k_nearest_within(&self, q: &GeoPoint, k: usize, radius_m: f64) -> Vec<(T, f64)> {
        let mut out = Vec::new();
        let mut stats = SpatialStats::default();
        self.k_nearest_within_into(q, k, radius_m, &mut out, &mut stats);
        out
    }

    /// Zero-alloc bounded kNN: best-first traversal with branch-and-bound on
    /// the current k-th distance. Clears and fills `out`.
    pub fn k_nearest_within_into(
        &self,
        q: &GeoPoint,
        k: usize,
        radius_m: f64,
        out: &mut Vec<(T, f64)>,
        stats: &mut SpatialStats,
    ) {
        out.clear();
        if self.is_empty() || k == 0 {
            return;
        }
        let (qx, qy) = self.frame.to_xy(q);
        let mut heap = BinaryHeap::new();
        heap.push(HeapEntry { dist: 0.0, node: self.root });
        while let Some(HeapEntry { dist, node: ni }) = heap.pop() {
            // Bound: once we hold k hits, only nodes that could still beat the
            // worst hit (or tie it with a smaller id) are worth visiting.
            let bound = if out.len() == k { out[k - 1].1 } else { radius_m };
            if dist > bound {
                break;
            }
            stats.nodes_visited += 1;
            let node = self.nodes[ni as usize];
            if node.leaf {
                stats.leaves_scanned += 1;
                for i in node.first as usize..(node.first + node.count) as usize {
                    stats.candidates_refined += 1;
                    let d = self.entry_dist(i, qx, qy);
                    if d > radius_m {
                        continue;
                    }
                    let cand = (self.ids[i], d);
                    let pos = out.partition_point(|e| {
                        e.1.total_cmp(&cand.1).then(e.0.cmp(&cand.0)) != Ordering::Greater
                    });
                    if pos < k {
                        out.insert(pos, cand);
                        out.truncate(k);
                    }
                }
            } else {
                for c in node.first..node.first + node.count {
                    let child = &self.nodes[c as usize];
                    let d = Self::mindist(child, qx, qy);
                    let bound = if out.len() == k { out[k - 1].1 } else { radius_m };
                    if d <= bound {
                        heap.push(HeapEntry { dist: d, node: c });
                    }
                }
            }
        }
    }

    /// Corridor candidate query: ids of all entries within `max_dist_m` of at
    /// least one point of `path`, sorted and deduplicated — the single-query
    /// replacement for calibration's per-probe-point ring scans.
    ///
    /// The path is walked in chunks of consecutive probes (spatially local by
    /// construction — they are polyline samples), each chunk answered with one
    /// tight rect pass padded by `max_dist_m` plus one metre of float slack.
    /// Chunking keeps the rect snug around the corridor even for long diagonal
    /// paths, whose whole-path bounding box would cover most of the city.
    /// Every candidate is re-filtered with the exact per-probe distance
    /// predicate the grid path evaluates (after a conservative per-axis window
    /// reject that can only skip pairs provably beyond `max_dist_m`), so the
    /// resulting id set equals the grid's sorted+deduped set exactly.
    pub fn along_into(
        &self,
        path: &[GeoPoint],
        max_dist_m: f64,
        out: &mut Vec<T>,
        stats: &mut SpatialStats,
    ) {
        /// Consecutive probes per rect query: large enough to amortize the
        /// tree descent, small enough that a chunk's bbox hugs the corridor.
        const CHUNK: usize = 8;
        out.clear();
        if self.is_empty() || path.is_empty() {
            return;
        }
        let probes: Vec<(f64, f64)> = path.iter().map(|p| self.frame.to_xy(p)).collect();
        let pad = max_dist_m + 1.0;
        let mut cand: Vec<u32> = Vec::new();
        let mut stack: Vec<u32> = Vec::new();
        for chunk in probes.chunks(CHUNK) {
            let (mut min_x, mut min_y) = (f64::INFINITY, f64::INFINITY);
            let (mut max_x, mut max_y) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
            for &(x, y) in chunk {
                min_x = min_x.min(x);
                min_y = min_y.min(y);
                max_x = max_x.max(x);
                max_y = max_y.max(y);
            }
            cand.clear();
            self.rect_entries_into(
                min_x - pad,
                min_y - pad,
                max_x + pad,
                max_y + pad,
                &mut cand,
                &mut stack,
                stats,
            );
            for &ei in &cand {
                let i = ei as usize;
                stats.candidates_refined += 1;
                // A probe within max_dist of the entry is within pad of the
                // entry's bbox on both axes (the closest segment point lies
                // inside the bbox), so the window reject below is exact: it
                // only skips pairs the entry_dist check would reject anyway.
                let e_min_x = self.ax[i].min(self.bx[i]);
                let e_max_x = self.ax[i].max(self.bx[i]);
                let e_min_y = self.ay[i].min(self.by[i]);
                let e_max_y = self.ay[i].max(self.by[i]);
                for &(px, py) in chunk {
                    if px < e_min_x - pad
                        || px > e_max_x + pad
                        || py < e_min_y - pad
                        || py > e_max_y + pad
                    {
                        continue;
                    }
                    if self.entry_dist(i, px, py) <= max_dist_m {
                        out.push(self.ids[i]);
                        break;
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
    }

    /// Like `rect_into` but pushes entry indices instead of ids (the corridor
    /// query needs coordinates for refinement).
    fn rect_entries_into(
        &self,
        min_x: f64,
        min_y: f64,
        max_x: f64,
        max_y: f64,
        out: &mut Vec<u32>,
        stack: &mut Vec<u32>,
        stats: &mut SpatialStats,
    ) {
        stack.clear();
        stack.push(self.root);
        while let Some(ni) = stack.pop() {
            stats.nodes_visited += 1;
            let node = self.nodes[ni as usize];
            if node.min_x > max_x || node.max_x < min_x || node.min_y > max_y || node.max_y < min_y
            {
                continue;
            }
            if node.leaf {
                stats.leaves_scanned += 1;
                for i in node.first..node.first + node.count {
                    let iu = i as usize;
                    let (e_min_x, e_max_x) =
                        (self.ax[iu].min(self.bx[iu]), self.ax[iu].max(self.bx[iu]));
                    let (e_min_y, e_max_y) =
                        (self.ay[iu].min(self.by[iu]), self.ay[iu].max(self.by[iu]));
                    if e_min_x <= max_x && e_max_x >= min_x && e_min_y <= max_y && e_max_y >= min_y
                    {
                        out.push(i);
                    }
                }
            } else {
                for c in node.first..node.first + node.count {
                    stack.push(c);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> GeoPoint {
        GeoPoint::new(39.9, 116.4)
    }

    fn ring(n: usize, radius_m: f64) -> Vec<(u32, GeoPoint)> {
        (0..n)
            .map(|i| {
                let bearing = 360.0 * i as f64 / n as f64; // cast-ok: small test sizes
                (i as u32, base().destination(bearing, radius_m)) // cast-ok: small test sizes
            })
            .collect()
    }

    #[test]
    fn empty_tree_queries_are_empty() {
        let tree: RTree<u32> = RTree::build_points(std::iter::empty());
        assert!(tree.is_empty());
        assert_eq!(tree.len(), 0);
        assert!(tree.within_radius(&base(), 1_000.0).is_empty());
        assert!(tree.nearest(&base()).is_none());
        assert!(tree.k_nearest(&base(), 3).is_empty());
        let mut out = Vec::new();
        let mut stats = SpatialStats::default();
        tree.along_into(&[base()], 100.0, &mut out, &mut stats);
        assert!(out.is_empty());
    }

    #[test]
    fn within_radius_sorted_by_distance_then_id() {
        let tree = RTree::build_points(ring(40, 500.0).into_iter().chain(ring(8, 2_000.0)));
        let hits = tree.within_radius(&base(), 1_000.0);
        assert_eq!(hits.len(), 40);
        for w in hits.windows(2) {
            assert!(
                w[0].1 < w[1].1 || (w[0].1 == w[1].1 && w[0].0 < w[1].0),
                "hits not (distance, id) sorted: {w:?}"
            );
        }
    }

    #[test]
    fn build_order_does_not_change_results() {
        let mut items = ring(64, 800.0);
        let forward = RTree::build_points(items.iter().copied());
        items.reverse();
        let backward = RTree::build_points(items.iter().copied());
        let q = base().destination(45.0, 300.0);
        assert_eq!(forward.within_radius(&q, 900.0), backward.within_radius(&q, 900.0));
        assert_eq!(forward.k_nearest(&q, 7), backward.k_nearest(&q, 7));
    }

    #[test]
    fn nearest_prefers_smaller_id_on_ties() {
        // Two entries at the exact same location: the smaller id must win.
        let p = base().destination(10.0, 100.0);
        let tree = RTree::build_points(vec![(7u32, p), (3u32, p)]);
        let (id, _) = tree.nearest(&base()).unwrap();
        assert_eq!(id, 3);
    }

    #[test]
    fn segment_entries_refine_to_exact_distance() {
        let a = base().destination(90.0, 1_000.0);
        let b = base().destination(90.0, 2_000.0);
        let tree = RTree::build_segments(vec![(1u32, a, b)]);
        // Query sits abreast of the segment interior: distance is the
        // perpendicular drop, not the distance to either endpoint.
        let q = base().destination(90.0, 1_500.0).destination(0.0, 200.0);
        let hits = tree.within_radius(&q, 300.0);
        assert_eq!(hits.len(), 1);
        assert!((hits[0].1 - 200.0).abs() < 2.0, "got {}", hits[0].1);
        // Far off the end: distance refines to the endpoint.
        let q_end = base().destination(90.0, 2_500.0);
        let d = tree.nearest(&q_end).unwrap().1;
        assert!((d - 500.0).abs() < 2.0, "got {d}");
    }

    #[test]
    fn bbox_returns_sorted_unique_ids() {
        let items = ring(30, 700.0);
        let tree = RTree::build_points(items.clone());
        let b = BoundingBox::enclosing(&items.iter().map(|(_, p)| *p).collect::<Vec<_>>())
            .unwrap()
            .inflate(1e-3);
        let ids = tree.bbox(&b);
        assert_eq!(ids, (0..30).collect::<Vec<u32>>());
    }

    #[test]
    fn along_matches_per_probe_union() {
        let items = ring(60, 900.0);
        let tree = RTree::build_points(items.clone());
        let path: Vec<GeoPoint> =
            (0..10).map(|i| base().destination(90.0, 150.0 * i as f64)).collect(); // cast-ok: small test sizes
        let cap = 650.0;
        let mut got = Vec::new();
        let mut stats = SpatialStats::default();
        tree.along_into(&path, cap, &mut got, &mut stats);
        let mut want: Vec<u32> = Vec::new();
        for p in &path {
            for (id, _) in tree.within_radius(p, cap) {
                want.push(id);
            }
        }
        want.sort_unstable();
        want.dedup();
        assert_eq!(got, want);
        assert!(stats.nodes_visited > 0 && stats.candidates_refined > 0);
    }

    #[test]
    fn spatial_index_kind_round_trips() {
        assert_eq!("rtree".parse::<SpatialIndexKind>().unwrap(), SpatialIndexKind::Rtree);
        assert_eq!("grid".parse::<SpatialIndexKind>().unwrap(), SpatialIndexKind::Grid);
        assert!("quadtree".parse::<SpatialIndexKind>().is_err());
        assert_eq!(SpatialIndexKind::default(), SpatialIndexKind::Rtree);
        assert_eq!(SpatialIndexKind::Rtree.to_string(), "rtree");
        assert_eq!(SpatialIndexKind::Grid.to_string(), "grid");
    }
}
