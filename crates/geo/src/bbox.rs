//! Axis-aligned latitude/longitude bounding boxes.

use crate::GeoPoint;
use serde::{Deserialize, Serialize};

/// An axis-aligned bounding box over latitude/longitude.
///
/// Cities do not straddle the antimeridian in this code base, so the box is a
/// plain min/max rectangle in degrees.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundingBox {
    pub min_lat: f64,
    pub min_lon: f64,
    pub max_lat: f64,
    pub max_lon: f64,
}

impl BoundingBox {
    /// Creates a box from two opposite corners (in any order).
    pub fn new(a: GeoPoint, b: GeoPoint) -> Self {
        Self {
            min_lat: a.lat.min(b.lat),
            min_lon: a.lon.min(b.lon),
            max_lat: a.lat.max(b.lat),
            max_lon: a.lon.max(b.lon),
        }
    }

    /// The tightest box enclosing every point of `points`.
    ///
    /// Returns `None` for an empty slice.
    pub fn enclosing(points: &[GeoPoint]) -> Option<Self> {
        let first = points.first()?;
        let mut bb = BoundingBox::new(*first, *first);
        for p in &points[1..] {
            bb.expand(p);
        }
        Some(bb)
    }

    /// Grows the box to include `p`.
    pub fn expand(&mut self, p: &GeoPoint) {
        self.min_lat = self.min_lat.min(p.lat);
        self.min_lon = self.min_lon.min(p.lon);
        self.max_lat = self.max_lat.max(p.lat);
        self.max_lon = self.max_lon.max(p.lon);
    }

    /// Grows the box outward by `margin_deg` degrees on every side.
    pub fn inflate(&self, margin_deg: f64) -> Self {
        Self {
            min_lat: self.min_lat - margin_deg,
            min_lon: self.min_lon - margin_deg,
            max_lat: self.max_lat + margin_deg,
            max_lon: self.max_lon + margin_deg,
        }
    }

    /// Whether the point lies inside (inclusive of the boundary).
    pub fn contains(&self, p: &GeoPoint) -> bool {
        p.lat >= self.min_lat
            && p.lat <= self.max_lat
            && p.lon >= self.min_lon
            && p.lon <= self.max_lon
    }

    /// The centre of the box.
    pub fn center(&self) -> GeoPoint {
        GeoPoint {
            lat: (self.min_lat + self.max_lat) / 2.0,
            lon: (self.min_lon + self.max_lon) / 2.0,
        }
    }

    /// Whether two boxes overlap (inclusive of touching edges).
    pub fn intersects(&self, other: &BoundingBox) -> bool {
        self.min_lat <= other.max_lat
            && self.max_lat >= other.min_lat
            && self.min_lon <= other.max_lon
            && self.max_lon >= other.min_lon
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new(lat, lon)
    }

    #[test]
    fn new_orders_corners() {
        let bb = BoundingBox::new(p(40.0, 117.0), p(39.0, 116.0));
        assert_eq!(bb.min_lat, 39.0);
        assert_eq!(bb.max_lon, 117.0);
    }

    #[test]
    fn enclosing_covers_all_points() {
        let pts = vec![p(39.9, 116.3), p(39.95, 116.5), p(39.8, 116.41)];
        let bb = BoundingBox::enclosing(&pts).unwrap();
        for q in &pts {
            assert!(bb.contains(q));
        }
        assert_eq!(bb.min_lat, 39.8);
        assert_eq!(bb.max_lon, 116.5);
    }

    #[test]
    fn enclosing_empty_is_none() {
        assert!(BoundingBox::enclosing(&[]).is_none());
    }

    #[test]
    fn contains_boundary_inclusive() {
        let bb = BoundingBox::new(p(39.0, 116.0), p(40.0, 117.0));
        assert!(bb.contains(&p(39.0, 116.0)));
        assert!(bb.contains(&p(40.0, 117.0)));
        assert!(!bb.contains(&p(40.0001, 116.5)));
    }

    #[test]
    fn center_is_midpoint() {
        let bb = BoundingBox::new(p(39.0, 116.0), p(41.0, 118.0));
        let c = bb.center();
        assert_eq!(c.lat, 40.0);
        assert_eq!(c.lon, 117.0);
    }

    #[test]
    fn inflate_grows_box() {
        let bb = BoundingBox::new(p(39.0, 116.0), p(40.0, 117.0)).inflate(0.5);
        assert!(bb.contains(&p(38.6, 115.6)));
        assert!(!bb.contains(&p(38.4, 116.5)));
    }

    #[test]
    fn intersects_detects_overlap_and_touching() {
        let a = BoundingBox::new(p(39.0, 116.0), p(40.0, 117.0));
        let b = BoundingBox::new(p(39.5, 116.5), p(40.5, 117.5));
        let c = BoundingBox::new(p(40.0, 117.0), p(41.0, 118.0)); // touches corner
        let d = BoundingBox::new(p(42.0, 119.0), p(43.0, 120.0));
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(a.intersects(&c));
        assert!(!a.intersects(&d));
    }
}
