//! Geodesy primitives for the `stmaker` trajectory-summarization stack.
//!
//! Everything downstream (road networks, calibration, map matching, feature
//! extraction) is built on the small set of types in this crate:
//!
//! * [`GeoPoint`] — a WGS-84 latitude/longitude pair with haversine distance,
//!   bearings and destination-point computation.
//! * [`LocalFrame`] — an equirectangular local tangent frame so that metric
//!   geometry (projections, interpolation) can be done in flat x/y metres.
//! * [`Polyline`] — an ordered sequence of points with arc-length queries,
//!   point projection and resampling.
//! * [`BoundingBox`] — axis-aligned lat/lon boxes.
//! * [`GridIndex`] — a uniform-grid spatial index for nearest-neighbour and
//!   radius queries over large point sets (used for POIs, landmarks and road
//!   vertices).
//! * [`RTree`] — a packed STR (Sort-Tile-Recursive) R-tree over point and
//!   segment entries, bulk-loaded into flat arrays; the default backend for
//!   the calibration and map-matching hot paths ([`SpatialIndexKind`] selects
//!   between it and the grid, [`SpatialStats`] counts traversal work).
//!
//! The paper's datasets cover a single city (Beijing), so an equirectangular
//! approximation is accurate to well under a metre across the region of
//! interest — far below GPS noise.

pub mod bbox;
pub mod grid;
pub mod point;
pub mod polyline;
pub mod rtree;

pub use bbox::BoundingBox;
pub use grid::GridIndex;
pub use point::{GeoPoint, LocalFrame, EARTH_RADIUS_M};
pub use polyline::{PolyProjection, Polyline};
pub use rtree::{RTree, SpatialIndexKind, SpatialStats};

/// Normalizes an angle in degrees into `[0, 360)`.
#[inline]
pub fn normalize_deg(mut deg: f64) -> f64 {
    deg %= 360.0;
    if deg < 0.0 {
        deg += 360.0;
    }
    deg
}

/// Smallest absolute difference between two headings, in degrees (`[0, 180]`).
///
/// Used by U-turn detection: a heading change close to 180° within a short
/// travel window is a U-turn.
#[inline]
pub fn heading_diff_deg(a: f64, b: f64) -> f64 {
    let d = (normalize_deg(a) - normalize_deg(b)).abs();
    if d > 180.0 {
        360.0 - d
    } else {
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_wraps_into_range() {
        assert_eq!(normalize_deg(0.0), 0.0);
        assert_eq!(normalize_deg(360.0), 0.0);
        assert_eq!(normalize_deg(-90.0), 270.0);
        assert_eq!(normalize_deg(720.5), 0.5);
    }

    #[test]
    fn heading_diff_is_symmetric_and_bounded() {
        assert_eq!(heading_diff_deg(10.0, 350.0), 20.0);
        assert_eq!(heading_diff_deg(350.0, 10.0), 20.0);
        assert_eq!(heading_diff_deg(0.0, 180.0), 180.0);
        assert_eq!(heading_diff_deg(90.0, 90.0), 0.0);
    }
}
