//! WGS-84 points, haversine geometry and a local flat-earth frame.

use serde::{Deserialize, Serialize};

/// Mean earth radius in metres (IUGG value), used by all haversine math.
pub const EARTH_RADIUS_M: f64 = 6_371_008.8;

/// A geographic point: WGS-84 latitude and longitude in decimal degrees.
///
/// This is the fundamental coordinate type of the whole stack; trajectories,
/// POIs, landmarks and road vertices are all sequences or sets of `GeoPoint`s.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoPoint {
    /// Latitude in decimal degrees, positive north.
    pub lat: f64,
    /// Longitude in decimal degrees, positive east.
    pub lon: f64,
}

impl GeoPoint {
    /// Creates a point from latitude/longitude in decimal degrees.
    ///
    /// # Panics
    /// Panics if the coordinates are not finite or outside the valid WGS-84
    /// ranges; upstream data loaders are expected to have cleaned their input.
    pub fn new(lat: f64, lon: f64) -> Self {
        assert!(lat.is_finite() && (-90.0..=90.0).contains(&lat), "invalid latitude {lat}");
        assert!(lon.is_finite() && (-180.0..=180.0).contains(&lon), "invalid longitude {lon}");
        Self { lat, lon }
    }

    /// Great-circle (haversine) distance to `other`, in metres.
    pub fn haversine_m(&self, other: &GeoPoint) -> f64 {
        let (lat1, lon1) = (self.lat.to_radians(), self.lon.to_radians());
        let (lat2, lon2) = (other.lat.to_radians(), other.lon.to_radians());
        let dlat = lat2 - lat1;
        let dlon = lon2 - lon1;
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        // Floating error can push `a` a hair outside [0, 1] for coincident
        // or near-antipodal points; unclamped that is sqrt/asin of an
        // out-of-domain value → NaN.
        2.0 * EARTH_RADIUS_M * a.clamp(0.0, 1.0).sqrt().asin()
    }

    /// Initial bearing from `self` towards `other`, in degrees clockwise from
    /// north, in `[0, 360)`. Returns 0 for coincident points.
    pub fn bearing_deg(&self, other: &GeoPoint) -> f64 {
        let (lat1, lon1) = (self.lat.to_radians(), self.lon.to_radians());
        let (lat2, lon2) = (other.lat.to_radians(), other.lon.to_radians());
        let dlon = lon2 - lon1;
        let y = dlon.sin() * lat2.cos();
        let x = lat1.cos() * lat2.sin() - lat1.sin() * lat2.cos() * dlon.cos();
        if y == 0.0 && x == 0.0 {
            return 0.0;
        }
        crate::normalize_deg(y.atan2(x).to_degrees())
    }

    /// The point reached by travelling `distance_m` metres from `self` on the
    /// initial bearing `bearing_deg` (degrees clockwise from north).
    pub fn destination(&self, bearing_deg: f64, distance_m: f64) -> GeoPoint {
        let br = bearing_deg.to_radians();
        let d = distance_m / EARTH_RADIUS_M;
        let lat1 = self.lat.to_radians();
        let lon1 = self.lon.to_radians();
        let lat2 = (lat1.sin() * d.cos() + lat1.cos() * d.sin() * br.cos()).asin();
        let lon2 =
            lon1 + (br.sin() * d.sin() * lat1.cos()).atan2(d.cos() - lat1.sin() * lat2.sin());
        GeoPoint { lat: lat2.to_degrees(), lon: ((lon2.to_degrees() + 540.0) % 360.0) - 180.0 }
    }

    /// Linear interpolation between `self` (t = 0) and `other` (t = 1) in the
    /// lat/lon plane. Adequate at city scale where segments are short.
    pub fn lerp(&self, other: &GeoPoint, t: f64) -> GeoPoint {
        GeoPoint {
            lat: self.lat + (other.lat - self.lat) * t,
            lon: self.lon + (other.lon - self.lon) * t,
        }
    }
}

/// A local equirectangular tangent frame anchored at a reference point.
///
/// Converts lat/lon to flat x/y metres (x east, y north) so that segment
/// projection, polyline arc length and nearest-edge queries can use ordinary
/// planar geometry. At city scale (≲ 50 km) the error versus true geodesics
/// is negligible relative to GPS noise.
#[derive(Debug, Clone, Copy)]
pub struct LocalFrame {
    origin: GeoPoint,
    /// Metres per degree of longitude at the origin's latitude.
    m_per_deg_lon: f64,
    /// Metres per degree of latitude (constant on the sphere).
    m_per_deg_lat: f64,
}

impl LocalFrame {
    /// Creates a frame anchored at `origin`.
    pub fn new(origin: GeoPoint) -> Self {
        let m_per_deg_lat = EARTH_RADIUS_M * std::f64::consts::PI / 180.0;
        let m_per_deg_lon = m_per_deg_lat * origin.lat.to_radians().cos();
        Self { origin, m_per_deg_lon, m_per_deg_lat }
    }

    /// The anchoring reference point.
    pub fn origin(&self) -> GeoPoint {
        self.origin
    }

    /// Projects a geographic point into local (x east, y north) metres.
    #[inline]
    pub fn to_xy(&self, p: &GeoPoint) -> (f64, f64) {
        (
            (p.lon - self.origin.lon) * self.m_per_deg_lon,
            (p.lat - self.origin.lat) * self.m_per_deg_lat,
        )
    }

    /// Inverse of [`LocalFrame::to_xy`].
    #[inline]
    pub fn to_geo(&self, x: f64, y: f64) -> GeoPoint {
        GeoPoint {
            lat: self.origin.lat + y / self.m_per_deg_lat,
            lon: self.origin.lon + x / self.m_per_deg_lon,
        }
    }

    /// Planar distance between two points in this frame, in metres.
    #[inline]
    pub fn dist_m(&self, a: &GeoPoint, b: &GeoPoint) -> f64 {
        let (ax, ay) = self.to_xy(a);
        let (bx, by) = self.to_xy(b);
        ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt()
    }

    /// Projects point `p` onto the segment `a`–`b`.
    ///
    /// Returns `(t, distance_m)` where `t ∈ [0, 1]` is the clamped position of
    /// the foot of the perpendicular along the segment and `distance_m` is the
    /// planar distance from `p` to that foot.
    pub fn project_onto_segment(&self, p: &GeoPoint, a: &GeoPoint, b: &GeoPoint) -> (f64, f64) {
        let (px, py) = self.to_xy(p);
        let (ax, ay) = self.to_xy(a);
        let (bx, by) = self.to_xy(b);
        let (dx, dy) = (bx - ax, by - ay);
        let len2 = dx * dx + dy * dy;
        let t = if len2 == 0.0 {
            0.0
        } else {
            (((px - ax) * dx + (py - ay) * dy) / len2).clamp(0.0, 1.0)
        };
        let (fx, fy) = (ax + t * dx, ay + t * dy);
        let dist = ((px - fx).powi(2) + (py - fy).powi(2)).sqrt();
        (t, dist)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn beijing() -> GeoPoint {
        GeoPoint::new(39.9042, 116.4074)
    }

    #[test]
    fn haversine_zero_for_same_point() {
        let p = beijing();
        assert_eq!(p.haversine_m(&p), 0.0);
    }

    #[test]
    fn haversine_known_distance() {
        // Beijing -> Shanghai is roughly 1067 km.
        let bj = beijing();
        let sh = GeoPoint::new(31.2304, 121.4737);
        let d = bj.haversine_m(&sh);
        assert!((d - 1_067_000.0).abs() < 10_000.0, "got {d}");
    }

    #[test]
    fn haversine_is_symmetric() {
        let a = beijing();
        let b = GeoPoint::new(39.95, 116.30);
        assert!((a.haversine_m(&b) - b.haversine_m(&a)).abs() < 1e-9);
    }

    #[test]
    fn destination_round_trips_distance() {
        let p = beijing();
        for bearing in [0.0, 45.0, 90.0, 135.0, 223.0, 359.0] {
            let q = p.destination(bearing, 5_000.0);
            let d = p.haversine_m(&q);
            assert!((d - 5_000.0).abs() < 1.0, "bearing {bearing}: {d}");
        }
    }

    #[test]
    fn bearing_cardinal_directions() {
        let p = beijing();
        let north = p.destination(0.0, 1000.0);
        let east = p.destination(90.0, 1000.0);
        assert!(p.bearing_deg(&north).min(360.0 - p.bearing_deg(&north)) < 0.5);
        assert!((p.bearing_deg(&east) - 90.0).abs() < 0.5);
    }

    #[test]
    fn bearing_of_coincident_points_is_zero() {
        let p = beijing();
        assert_eq!(p.bearing_deg(&p), 0.0);
    }

    #[test]
    fn local_frame_round_trip() {
        let frame = LocalFrame::new(beijing());
        let p = GeoPoint::new(39.95, 116.35);
        let (x, y) = frame.to_xy(&p);
        let back = frame.to_geo(x, y);
        assert!((back.lat - p.lat).abs() < 1e-12);
        assert!((back.lon - p.lon).abs() < 1e-12);
    }

    #[test]
    fn local_frame_distance_close_to_haversine_at_city_scale() {
        let frame = LocalFrame::new(beijing());
        let a = GeoPoint::new(39.92, 116.39);
        let b = GeoPoint::new(39.99, 116.50);
        let planar = frame.dist_m(&a, &b);
        let sphere = a.haversine_m(&b);
        // Within 0.2% at ~12 km scale.
        assert!((planar - sphere).abs() / sphere < 2e-3, "{planar} vs {sphere}");
    }

    #[test]
    fn projection_onto_segment_midpoint() {
        let frame = LocalFrame::new(beijing());
        let a = beijing();
        let b = a.destination(90.0, 1000.0);
        let mid = a.destination(90.0, 500.0).destination(0.0, 30.0); // 30 m north of midpoint
        let (t, d) = frame.project_onto_segment(&mid, &a, &b);
        assert!((t - 0.5).abs() < 0.01, "t = {t}");
        assert!((d - 30.0).abs() < 1.0, "d = {d}");
    }

    #[test]
    fn projection_clamps_to_endpoints() {
        let frame = LocalFrame::new(beijing());
        let a = beijing();
        let b = a.destination(90.0, 1000.0);
        let before = a.destination(270.0, 200.0);
        let (t, d) = frame.project_onto_segment(&before, &a, &b);
        assert_eq!(t, 0.0);
        assert!((d - 200.0).abs() < 1.0);
        let after = b.destination(90.0, 300.0);
        let (t, d) = frame.project_onto_segment(&after, &a, &b);
        assert_eq!(t, 1.0);
        assert!((d - 300.0).abs() < 1.5);
    }

    #[test]
    fn projection_degenerate_segment() {
        let frame = LocalFrame::new(beijing());
        let a = beijing();
        let p = a.destination(10.0, 77.0);
        let (t, d) = frame.project_onto_segment(&p, &a, &a);
        assert_eq!(t, 0.0);
        assert!((d - 77.0).abs() < 0.5);
    }

    #[test]
    fn lerp_endpoints_and_middle() {
        let a = GeoPoint::new(39.9, 116.3);
        let b = GeoPoint::new(40.0, 116.5);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        let m = a.lerp(&b, 0.5);
        assert!((m.lat - 39.95).abs() < 1e-12);
        assert!((m.lon - 116.4).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid latitude")]
    fn new_rejects_bad_latitude() {
        GeoPoint::new(123.0, 0.0);
    }
}
