//! Property-based tests for the geodesy primitives.

use proptest::prelude::*;
use stmaker_geo::{
    heading_diff_deg, BoundingBox, GeoPoint, GridIndex, LocalFrame, Polyline, RTree,
};

/// Latitudes/longitudes inside a generous city-scale band (avoids poles and
/// the antimeridian, which the stack deliberately does not support).
fn city_point() -> impl Strategy<Value = GeoPoint> {
    (30.0f64..50.0, 100.0f64..130.0).prop_map(|(lat, lon)| GeoPoint::new(lat, lon))
}

/// Bearing/distance offsets from a shared origin; distances are drawn from a
/// small integer lattice so duplicate coordinates actually occur.
fn lattice_offsets(max_len: usize) -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec(
        (prop::sample::select(vec![0.0f64, 90.0, 180.0, 270.0]), 0u32..12),
        1..max_len,
    )
    .prop_map(|v| v.into_iter().map(|(b, d)| (b, 250.0 * d as f64)).collect())
}

/// Brute-force (distance, id)-sorted hits within `radius` under the tree's
/// own planar frame — the reference all R-tree query results must match.
fn brute_hits(
    tree: &RTree<u32>,
    segs: &[(u32, GeoPoint, GeoPoint)],
    q: &GeoPoint,
    radius: f64,
) -> Vec<(u32, f64)> {
    let frame = tree.frame();
    let mut hits: Vec<(u32, f64)> = segs
        .iter()
        .map(|(id, a, b)| (*id, frame.project_onto_segment(q, a, b).1))
        .filter(|(_, d)| *d <= radius)
        .collect();
    hits.sort_unstable_by(|x, y| x.1.total_cmp(&y.1).then(x.0.cmp(&y.0)));
    hits
}

proptest! {
    #[test]
    fn destination_inverts_haversine(p in city_point(),
                                     bearing in 0.0f64..360.0,
                                     dist in 1.0f64..50_000.0) {
        let q = p.destination(bearing, dist);
        let measured = p.haversine_m(&q);
        prop_assert!((measured - dist).abs() < dist * 1e-3 + 0.5,
                     "asked {dist}, measured {measured}");
    }

    #[test]
    fn bearing_points_toward_destination(p in city_point(),
                                         bearing in 0.0f64..360.0,
                                         dist in 100.0f64..20_000.0) {
        let q = p.destination(bearing, dist);
        let measured = p.bearing_deg(&q);
        prop_assert!(heading_diff_deg(measured, bearing) < 0.5,
                     "asked {bearing}, measured {measured}");
    }

    #[test]
    fn haversine_triangle_inequality(a in city_point(), b in city_point(), c in city_point()) {
        let ab = a.haversine_m(&b);
        let bc = b.haversine_m(&c);
        let ac = a.haversine_m(&c);
        prop_assert!(ac <= ab + bc + 1e-6);
    }

    #[test]
    fn heading_diff_bounds_and_symmetry(a in -720.0f64..720.0, b in -720.0f64..720.0) {
        let d = heading_diff_deg(a, b);
        prop_assert!((0.0..=180.0).contains(&d));
        prop_assert!((heading_diff_deg(b, a) - d).abs() < 1e-9);
        prop_assert!(heading_diff_deg(a, a) < 1e-9);
    }

    #[test]
    fn local_frame_round_trip(origin in city_point(),
                              dx in -20_000.0f64..20_000.0,
                              dy in -20_000.0f64..20_000.0) {
        let frame = LocalFrame::new(origin);
        let p = frame.to_geo(dx, dy);
        let (x2, y2) = frame.to_xy(&p);
        prop_assert!((x2 - dx).abs() < 1e-6);
        prop_assert!((y2 - dy).abs() < 1e-6);
    }

    #[test]
    fn grid_nearest_matches_brute_force(
        origin in city_point(),
        offsets in prop::collection::vec((0.0f64..360.0, 10.0f64..5_000.0), 1..40),
        q_bearing in 0.0f64..360.0,
        q_dist in 0.0f64..6_000.0,
    ) {
        let pts: Vec<GeoPoint> =
            offsets.iter().map(|(b, d)| origin.destination(*b, *d)).collect();
        let grid = GridIndex::build(pts.iter().copied().enumerate(), 400.0);
        let q = origin.destination(q_bearing, q_dist);
        let (got, got_d) = grid.nearest(&q).expect("non-empty index");
        // Brute force under the same (planar local-frame) metric the grid uses.
        let frame_origin = BoundingBox::enclosing(&pts).unwrap().inflate(1e-4).center();
        let frame = LocalFrame::new(frame_origin);
        let best = pts
            .iter()
            .map(|p| frame.dist_m(&q, p))
            .fold(f64::INFINITY, f64::min);
        prop_assert!((got_d - best).abs() < 1.0, "grid {got_d} vs brute {best} (id {got})");
    }

    #[test]
    fn grid_radius_query_is_exact(
        origin in city_point(),
        offsets in prop::collection::vec((0.0f64..360.0, 10.0f64..3_000.0), 1..30),
        radius in 50.0f64..2_000.0,
    ) {
        let pts: Vec<GeoPoint> =
            offsets.iter().map(|(b, d)| origin.destination(*b, *d)).collect();
        let grid = GridIndex::build(pts.iter().copied().enumerate(), 300.0);
        let hits = grid.within_radius(&origin, radius);
        for (id, d) in &hits {
            prop_assert!(*d <= radius, "hit {id} at {d} beyond {radius}");
        }
        // Every point closer than radius − ε is reported (the grid metric is
        // planar; allow a small tolerance against haversine construction).
        let frame = LocalFrame::new(BoundingBox::enclosing(&pts).unwrap().inflate(1e-4).center());
        let expected = pts.iter().filter(|p| frame.dist_m(&origin, p) <= radius - 0.01).count();
        prop_assert!(hits.len() >= expected, "{} hits vs {expected} expected", hits.len());
    }

    #[test]
    fn polyline_point_at_is_monotone_along_arc(
        origin in city_point(),
        legs in prop::collection::vec((0.0f64..360.0, 50.0f64..2_000.0), 1..8),
        f1 in 0.0f64..1.0,
        f2 in 0.0f64..1.0,
    ) {
        let mut pts = vec![origin];
        for (b, d) in &legs {
            let last = *pts.last().unwrap();
            pts.push(last.destination(*b, *d));
        }
        let pl = Polyline::new(pts);
        let total = pl.length_m();
        let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
        let p_lo = pl.point_at(lo * total);
        let p_hi = pl.point_at(hi * total);
        // Arc position of the returned points is consistent with the request.
        let frame = LocalFrame::new(origin);
        let a_lo = pl.project(&frame, &p_lo).arc_m;
        let a_hi = pl.project(&frame, &p_hi).arc_m;
        prop_assert!(a_lo <= a_hi + 1.0, "arc order violated: {a_lo} > {a_hi}");
    }

    #[test]
    fn resample_preserves_endpoints_and_length(
        origin in city_point(),
        legs in prop::collection::vec((0.0f64..360.0, 50.0f64..2_000.0), 1..6),
        step in 20.0f64..500.0,
    ) {
        let mut pts = vec![origin];
        for (b, d) in &legs {
            let last = *pts.last().unwrap();
            pts.push(last.destination(*b, *d));
        }
        let pl = Polyline::new(pts);
        let rs = pl.resample(step);
        prop_assert_eq!(rs.points()[0], pl.points()[0]);
        prop_assert!(rs.points().last().unwrap().haversine_m(pl.points().last().unwrap()) < 0.01);
        // Resampling cannot lengthen a polyline beyond interpolation error
        // (point_at lerps in lat/lon while lengths are haversine), and
        // shortens it only by corner cutting (bounded by step per corner).
        let budget = step * legs.len() as f64 * 2.0 + 1.0;
        prop_assert!(rs.length_m() <= pl.length_m() * (1.0 + 1e-4) + 0.01);
        prop_assert!(rs.length_m() >= pl.length_m() - budget);
    }
}

proptest! {
    // R-tree queries must match brute force exactly (same planar frame, same
    // float arithmetic) for random point sets with duplicate coordinates and
    // queries that may sit far outside the tree's bounding box.
    #[test]
    fn rtree_point_queries_match_brute_force(
        origin in city_point(),
        offsets in lattice_offsets(40),
        q_bearing in 0.0f64..360.0,
        q_dist in 0.0f64..60_000.0,
        radius in 50.0f64..4_000.0,
        k in 1usize..8,
    ) {
        let segs: Vec<(u32, GeoPoint, GeoPoint)> = offsets
            .iter()
            .enumerate()
            .map(|(i, (b, d))| {
                let p = origin.destination(*b, *d);
                (i as u32, p, p) // cast-ok: test sizes
            })
            .collect();
        let tree = RTree::build_points(segs.iter().map(|(id, p, _)| (*id, *p)));
        let q = origin.destination(q_bearing, q_dist);

        let brute = brute_hits(&tree, &segs, &q, radius);
        prop_assert_eq!(tree.within_radius(&q, radius), brute.clone());

        let all = brute_hits(&tree, &segs, &q, f64::INFINITY);
        prop_assert_eq!(tree.nearest(&q), all.first().copied());
        prop_assert_eq!(tree.k_nearest(&q, k), all[..k.min(all.len())].to_vec());
        prop_assert_eq!(
            tree.k_nearest_within(&q, k, radius),
            brute[..k.min(brute.len())].to_vec()
        );
    }

    // Same contract for segment entries, including degenerate (zero-length)
    // segments mixed in with real ones.
    #[test]
    fn rtree_segment_queries_match_brute_force(
        origin in city_point(),
        offsets in lattice_offsets(25),
        seg_bearing in 0.0f64..360.0,
        seg_lens in prop::collection::vec(0.0f64..2_000.0, 25),
        q_bearing in 0.0f64..360.0,
        q_dist in 0.0f64..60_000.0,
        radius in 50.0f64..4_000.0,
        k in 1usize..6,
    ) {
        let segs: Vec<(u32, GeoPoint, GeoPoint)> = offsets
            .iter()
            .enumerate()
            .map(|(i, (b, d))| {
                let a = origin.destination(*b, *d);
                // Every third segment is degenerate (a == b).
                let len = if i % 3 == 0 { 0.0 } else { seg_lens[i % seg_lens.len()] };
                let bb = if len == 0.0 { a } else { a.destination(seg_bearing, len) };
                (i as u32, a, bb) // cast-ok: test sizes
            })
            .collect();
        let tree = RTree::build_segments(segs.iter().copied());
        let q = origin.destination(q_bearing, q_dist);

        let brute = brute_hits(&tree, &segs, &q, radius);
        prop_assert_eq!(tree.within_radius(&q, radius), brute.clone());

        let all = brute_hits(&tree, &segs, &q, f64::INFINITY);
        prop_assert_eq!(tree.nearest(&q), all.first().copied());
        prop_assert_eq!(tree.k_nearest(&q, k), all[..k.min(all.len())].to_vec());
    }

    // The grid's new zero-alloc radius query must agree with the allocating
    // one (same hits, same cell-scan order) when the scratch is reused dirty.
    #[test]
    fn grid_within_radius_into_matches_allocating_path(
        origin in city_point(),
        offsets in lattice_offsets(30),
        radius in 50.0f64..3_000.0,
    ) {
        let pts: Vec<(usize, GeoPoint)> = offsets
            .iter()
            .enumerate()
            .map(|(i, (b, d))| (i, origin.destination(*b, *d)))
            .collect();
        let grid = GridIndex::build(pts, 300.0);
        let mut scratch = vec![(usize::MAX, -1.0)]; // dirty scratch must be cleared
        grid.within_radius_into(&origin, radius, &mut scratch);
        prop_assert_eq!(scratch, grid.within_radius(&origin, radius));
    }
}
