//! End-to-end tests against a live `stmaker-server` on a loopback socket:
//! concurrency byte-identity with the CLI serving path, model hot-swap
//! cache-staleness regression, admission control, streaming ingest, and
//! graceful shutdown.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use stmaker::{
    standard_features, FeatureWeights, Recorder, Summarizer, SummarizerConfig, TrainedModel,
};
use stmaker_generator::{TripConfig, TripGenerator, World, WorldConfig};
use stmaker_io::{
    read_model_stc, read_trajectory_csv, write_model_stc, write_trajectory_csv, write_trips_stc,
};
use stmaker_server::{ServeConfig, Server};
use stmaker_trajectory::RawPoint;

// -- fixtures ---------------------------------------------------------------

struct Fixture {
    world: World,
    /// Trip bodies exactly as a client would POST them (CSV text).
    trip_csvs: Vec<String>,
}

impl Fixture {
    fn new() -> Self {
        let world = World::generate(WorldConfig::small(77));
        let gen = TripGenerator::new(&world, TripConfig::default());
        let trip_csvs = gen
            .generate_corpus(6, 2002)
            .into_iter()
            .map(|t| write_trajectory_csv(&t.raw))
            .collect();
        Self { world, trip_csvs }
    }

    fn train(&self, n: usize, seed: u64) -> TrainedModel {
        let gen = TripGenerator::new(&self.world, TripConfig::default());
        let corpus: Vec<_> = gen.generate_corpus(n, seed).into_iter().map(|t| t.raw).collect();
        let features = standard_features();
        let weights = FeatureWeights::uniform(&features);
        Summarizer::train(
            &self.world.net,
            &self.world.registry,
            &corpus,
            features,
            weights,
            SummarizerConfig::default(),
        )
        .into_model()
    }

    fn summarizer(&self, model: TrainedModel, cfg: SummarizerConfig) -> Summarizer<'_> {
        let features = standard_features();
        let weights = FeatureWeights::uniform(&features);
        Summarizer::try_from_model(
            &self.world.net,
            &self.world.registry,
            model,
            features,
            weights,
            cfg,
        )
        .expect("registry matches")
    }

    /// What the CLI path would print for each trip CSV (text + newline),
    /// or None where summarization errors.
    fn reference_texts(&self, summarizer: &Summarizer<'_>) -> Vec<Option<String>> {
        self.trip_csvs
            .iter()
            .map(|csv| {
                let points = read_trajectory_csv(csv).expect("fixture parses").points().to_vec();
                summarizer.summarize_points(&points).ok().map(|s| format!("{}\n", s.text))
            })
            .collect()
    }
}

/// Runs `server` on scoped threads, passes the bound address to `f`, and
/// guarantees a drain even when `f` panics (otherwise the scope would
/// never join and the test would hang instead of failing).
fn with_running<'w, F: FnOnce(SocketAddr)>(server: &Server<'w>, f: F) {
    struct Drain<'a, 'w>(&'a Server<'w>);
    impl Drop for Drain<'_, '_> {
        fn drop(&mut self) {
            self.0.shutdown();
        }
    }
    std::thread::scope(|s| {
        s.spawn(|| server.run());
        let _drain = Drain(server);
        f(server.local_addr());
    });
}

// -- tiny HTTP client -------------------------------------------------------

fn request(addr: SocketAddr, method: &str, path: &str, body: &[u8]) -> (u16, Vec<u8>) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
    let head =
        format!("{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n", body.len());
    s.write_all(head.as_bytes()).expect("write head");
    s.write_all(body).expect("write body");
    let mut raw = Vec::new();
    s.read_to_end(&mut raw).expect("read response");
    let text_end = raw.windows(4).position(|w| w == b"\r\n\r\n").expect("response head");
    let status: u16 = std::str::from_utf8(&raw[..text_end])
        .expect("ascii head")
        .split(' ')
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    (status, raw[text_end + 4..].to_vec())
}

fn body_text(body: &[u8]) -> String {
    String::from_utf8(body.to_vec()).expect("utf-8 body")
}

// -- tests ------------------------------------------------------------------

/// Satellite 4: N client threads against `/summarize` and
/// `/summarize_batch` get bytes identical to the sequential CLI path, at
/// threads 1/2/4, with and without the route cache.
#[test]
fn concurrent_clients_get_cli_identical_bytes() {
    let fx = Fixture::new();
    let reference = {
        let summarizer = fx.summarizer(fx.train(60, 1001), SummarizerConfig::default());
        fx.reference_texts(&summarizer)
    };
    let batch_body: String = fx.trip_csvs.join("\n");
    let batch_reference: String = reference
        .iter()
        .map(|r| match r {
            Some(text) => text.clone(),
            None => "error".to_owned(), // prefix-checked below
        })
        .collect();

    for threads in [1usize, 2, 4] {
        for route_cache in [0usize, 64] {
            let base_cfg =
                SummarizerConfig::default().with_threads(threads).with_route_cache(route_cache);
            let server = Server::bind(
                &fx.world.net,
                &fx.world.registry,
                fx.train(60, 1001),
                base_cfg,
                ServeConfig::default(),
            )
            .expect("bind");
            with_running(&server, |addr| {
                std::thread::scope(|s| {
                    for _client in 0..3 {
                        s.spawn(|| {
                            for (csv, expect) in fx.trip_csvs.iter().zip(&reference) {
                                let (status, body) =
                                    request(addr, "POST", "/summarize", csv.as_bytes());
                                match expect {
                                    Some(text) => {
                                        assert_eq!(status, 200, "{}", body_text(&body));
                                        assert_eq!(&body_text(&body), text);
                                    }
                                    None => assert_eq!(status, 422),
                                }
                            }
                        });
                    }
                });
                // Trips separated by blank lines; one line per trip, index
                // aligned, errors inline.
                let (status, body) =
                    request(addr, "POST", "/summarize_batch", batch_body.as_bytes());
                assert_eq!(status, 200);
                let got = body_text(&body);
                for (line, expect) in got.lines().zip(batch_reference.lines()) {
                    if expect == "error" {
                        assert!(line.starts_with("error:"), "{line}");
                    } else {
                        assert_eq!(line, expect, "threads={threads} cache={route_cache}");
                    }
                }
                assert_eq!(got.lines().count(), fx.trip_csvs.len());
            });
        }
    }
}

/// Satellite 1 over the wire: a hot-swapped model must never be answered
/// from the previous generation's memoized route entries (negative
/// answers included). Post-swap responses are compared byte-for-byte
/// against a cold-cache summarizer built from the same new model.
#[test]
fn hot_swap_serves_cold_cache_bytes() {
    let fx = Fixture::new();
    let model_a = fx.train(60, 1001);
    let model_b = fx.train(8, 5005);
    let model_b_json = model_b.to_json();

    let cold_b = {
        let summarizer =
            fx.summarizer(fx.train(8, 5005), SummarizerConfig::default().with_route_cache(64));
        fx.reference_texts(&summarizer)
    };
    let warm_a = {
        let summarizer = fx.summarizer(model_a, SummarizerConfig::default().with_route_cache(64));
        fx.reference_texts(&summarizer)
    };
    assert_ne!(warm_a, cold_b, "models must disagree for the test to have teeth");

    let server = Server::bind(
        &fx.world.net,
        &fx.world.registry,
        fx.train(60, 1001),
        SummarizerConfig::default().with_route_cache(64),
        ServeConfig::default(),
    )
    .expect("bind");
    with_running(&server, |addr| {
        // Warm generation A's cache: every trip twice, so the second pass
        // is served from memoized entries (misses memoize negatives too).
        for _pass in 0..2 {
            for (csv, expect) in fx.trip_csvs.iter().zip(&warm_a) {
                let (status, body) = request(addr, "POST", "/summarize", csv.as_bytes());
                if let Some(text) = expect {
                    assert_eq!((status, body_text(&body)), (200, text.clone()));
                }
            }
        }
        let (status, body) = request(addr, "POST", "/model", model_b_json.as_bytes());
        assert_eq!(status, 200, "{}", body_text(&body));
        assert!(body_text(&body).contains("\"model_version\": 2"));
        let (status, body) = request(addr, "GET", "/healthz", b"");
        assert_eq!(status, 200);
        assert!(body_text(&body).contains("\"model_version\": 2"), "{}", body_text(&body));

        for (csv, expect) in fx.trip_csvs.iter().zip(&cold_b) {
            let (status, body) = request(addr, "POST", "/summarize", csv.as_bytes());
            match expect {
                Some(text) => assert_eq!((status, body_text(&body)), (200, text.clone())),
                None => assert_eq!(status, 422),
            }
        }

        // A model for a different registry is a typed 422, not a swap.
        let mut bad = fx.train(8, 5005);
        bad.registry_len += 1;
        let (status, body) = request(addr, "POST", "/model", bad.to_json().as_bytes());
        assert_eq!(status, 422);
        assert!(body_text(&body).contains("registry"), "{}", body_text(&body));
    });
}

/// Admission control: with one worker wedged and the depth-1 queue
/// occupied, the accept loop answers 429 immediately.
#[test]
fn full_queue_answers_429() {
    let fx = Fixture::new();
    let cfg = ServeConfig {
        workers: 1,
        queue_depth: 1,
        io_timeout: Duration::from_secs(2),
        ..ServeConfig::default()
    };
    let server = Server::bind(
        &fx.world.net,
        &fx.world.registry,
        fx.train(20, 1001),
        SummarizerConfig::default(),
        cfg,
    )
    .expect("bind");
    with_running(&server, |addr| {
        // Wedge the only worker: a half-written request holds it in the
        // body read until the io timeout.
        let mut held1 = TcpStream::connect(addr).expect("held1");
        held1.write_all(b"POST /summarize HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc").expect("w");
        std::thread::sleep(Duration::from_millis(300));
        // Occupy the single queue slot the same way.
        let mut held2 = TcpStream::connect(addr).expect("held2");
        held2.write_all(b"POST /summarize HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc").expect("w");
        std::thread::sleep(Duration::from_millis(300));

        let (status, body) = request(addr, "GET", "/healthz", b"");
        assert_eq!(status, 429, "{}", body_text(&body));
        assert!(body_text(&body).contains("queue"), "{}", body_text(&body));
    });
}

/// `POST /shutdown` drains: the response arrives, `run` returns (the
/// harness scope joins), and the listener stops accepting.
#[test]
fn shutdown_endpoint_drains_cleanly() {
    let fx = Fixture::new();
    let server = Server::bind(
        &fx.world.net,
        &fx.world.registry,
        fx.train(20, 1001),
        SummarizerConfig::default(),
        ServeConfig::default(),
    )
    .expect("bind");
    let mut addr_out = None;
    with_running(&server, |addr| {
        let (status, body) = request(addr, "GET", "/healthz", b"");
        assert_eq!(status, 200, "{}", body_text(&body));
        let (status, body) = request(addr, "POST", "/shutdown", b"");
        assert_eq!(status, 200);
        assert!(body_text(&body).contains("draining"));
        addr_out = Some(addr);
    });
    // The scope joined, so run() returned. The kernel may still complete
    // handshakes against the listen backlog until the Server drops, but
    // nobody serves them: a post-drain request must never get an answer.
    let addr = addr_out.expect("addr");
    std::thread::sleep(Duration::from_millis(50));
    match TcpStream::connect_timeout(&addr, Duration::from_millis(250)) {
        Err(_) => {} // listener already gone — even better
        Ok(mut s) => {
            s.set_read_timeout(Some(Duration::from_millis(300))).expect("timeout");
            let _ = s.write_all(b"GET /healthz HTTP/1.1\r\n\r\n");
            let mut buf = Vec::new();
            let got = s.read_to_end(&mut buf);
            assert!(
                got.is_err() || buf.is_empty(),
                "drained server still answered: {:?}",
                String::from_utf8_lossy(&buf)
            );
        }
    }
}

/// `/ingest` sessions: chunked pushes replay deterministically, defective
/// samples are dropped and counted, and `finish=1` returns the same text
/// as a one-shot summarize of the accepted points.
#[test]
fn ingest_session_replays_and_finishes() {
    let fx = Fixture::new();
    let model = fx.train(60, 1001);
    let reference = {
        let summarizer = fx.summarizer(fx.train(60, 1001), SummarizerConfig::default());
        let points: Vec<RawPoint> =
            read_trajectory_csv(&fx.trip_csvs[0]).expect("parses").points().to_vec();
        summarizer.summarize_points(&points).expect("summarizes").text
    };
    let server = Server::bind(
        &fx.world.net,
        &fx.world.registry,
        model,
        SummarizerConfig::default(),
        ServeConfig::default(),
    )
    .expect("bind");
    with_running(&server, |addr| {
        let csv = &fx.trip_csvs[0];
        let lines: Vec<&str> = csv.lines().collect();
        let (header, rows) = (lines[0], &lines[1..]);
        let mid = rows.len() / 2;
        // Chunk 1, plus one defective and one out-of-order row that the
        // stream must drop (not reject).
        let chunk1 = format!("{header}\n{}\n999.0,0.0,12\n{}\n", rows[..mid].join("\n"), rows[0]);
        let (status, body) = request(addr, "POST", "/ingest?session=trip-0", chunk1.as_bytes());
        assert_eq!(status, 200, "{}", body_text(&body));
        let text = body_text(&body);
        assert!(text.contains("\"dropped_invalid\": 1"), "{text}");
        assert!(text.contains("\"dropped_out_of_order\": 1"), "{text}");
        assert!(text.contains("\"finished\": false"), "{text}");

        let chunk2 = format!("{header}\n{}\n", rows[mid..].join("\n"));
        let (status, body) =
            request(addr, "POST", "/ingest?session=trip-0&finish=1", chunk2.as_bytes());
        assert_eq!(status, 200, "{}", body_text(&body));
        let text = body_text(&body);
        assert!(text.contains("\"finished\": true"), "{text}");
        let expected = format!("\"summary\": \"{reference}\"");
        assert!(text.contains(&expected), "final summary must match one-shot:\n{text}");

        // The session is gone: finishing it again is a 404.
        let (status, _) = request(addr, "POST", "/ingest?session=trip-0&finish=1", b"");
        assert_eq!(status, 404);
        // Bad session names are a 400.
        let (status, _) = request(addr, "POST", "/ingest?session=..%2Fetc", b"");
        assert_eq!(status, 400);
    });
}

/// `/metrics` serves the obs report: valid JSON under the schema
/// validator, with the serve.* counters moving.
#[test]
fn metrics_reports_serve_counters() {
    let fx = Fixture::new();
    let server = Server::bind(
        &fx.world.net,
        &fx.world.registry,
        fx.train(20, 1001),
        SummarizerConfig::default().with_recorder(Recorder::enabled()),
        ServeConfig::default(),
    )
    .expect("bind");
    with_running(&server, |addr| {
        let (status, _) = request(addr, "GET", "/healthz", b"");
        assert_eq!(status, 200);
        let (status, body) = request(addr, "POST", "/summarize", fx.trip_csvs[0].as_bytes());
        assert_eq!(status, 200);
        let (status, body2) = request(addr, "GET", "/metrics", b"");
        assert_eq!(status, 200);
        let json = body_text(&body2);
        let names = stmaker_obs::report::validate_json(&json).expect("metrics validate");
        assert!(names.contains("serve.request"), "{names:?}");
        let report = stmaker_obs::Report::from_json(&json).expect("parses");
        assert!(report.counters.get("serve.requests").copied().unwrap_or(0) >= 2, "{report:?}");
        assert!(report.counters.get("serve.responses_ok").copied().unwrap_or(0) >= 2);
        assert!(report.counters.get("serve.bytes_out").copied().unwrap_or(0) > body.len() as u64);
        assert!(report.histograms.contains_key("serve.request_ms"), "latency histogram");
        assert!(report.gauges.contains_key("serve.model_version"));
    });
}

/// Per-request sanitize override: a defective body is a typed 422 under
/// strict parsing and a 200 under `?sanitize=repair`.
#[test]
fn sanitize_is_per_request() {
    let fx = Fixture::new();
    let server = Server::bind(
        &fx.world.net,
        &fx.world.registry,
        fx.train(60, 1001),
        SummarizerConfig::default(),
        ServeConfig::default(),
    )
    .expect("bind");
    with_running(&server, |addr| {
        // Inject an out-of-range row into an otherwise good trip.
        let csv = &fx.trip_csvs[0];
        let lines: Vec<&str> = csv.lines().collect();
        let defective = format!(
            "{}\n{}\n99.0,0.0,999999\n{}\n",
            lines[0],
            lines[1..4].join("\n"),
            lines[4..].join("\n"),
        );
        let (status, body) = request(addr, "POST", "/summarize", defective.as_bytes());
        assert_eq!(status, 422, "strict default must refuse: {}", body_text(&body));
        let (status, body) =
            request(addr, "POST", "/summarize?sanitize=repair", defective.as_bytes());
        assert_eq!(status, 200, "repair must serve: {}", body_text(&body));
        let (status, _) = request(addr, "POST", "/summarize?sanitize=bogus", b"x");
        assert_eq!(status, 400);
    });
}

/// The STC1 wire surface: `GET /model?format=stc` round-trips to the
/// identical canonical JSON, a binary `POST /model` hot-swaps (sniffed,
/// no format parameter needed), and `?format=stc` trip bodies produce
/// byte-identical summaries to the CSV path.
#[test]
fn stc_wire_surface_is_equivalent() {
    let fx = Fixture::new();
    let model_a_json = fx.train(60, 1001).to_json();
    let model_b = fx.train(8, 5005);
    let cold_b = {
        let summarizer = fx.summarizer(fx.train(8, 5005), SummarizerConfig::default());
        fx.reference_texts(&summarizer)
    };
    let trips: Vec<_> =
        fx.trip_csvs.iter().map(|csv| read_trajectory_csv(csv).expect("fixture parses")).collect();
    let stc_container = write_trips_stc(&trips);
    let single_stc = write_trips_stc(&trips[..1]);

    let server = Server::bind(
        &fx.world.net,
        &fx.world.registry,
        fx.train(60, 1001),
        SummarizerConfig::default(),
        ServeConfig::default(),
    )
    .expect("bind");
    with_running(&server, |addr| {
        // Download both encodings of generation 1's model; they must
        // describe the same model, and the STC bytes must decode to the
        // identical canonical JSON (the byte-identity contract, over HTTP).
        let (status, stc_body) = request(addr, "GET", "/model?format=stc", b"");
        assert_eq!(status, 200);
        assert!(stc_body.starts_with(b"STC1"), "binary download carries the magic");
        let downloaded = read_model_stc(&stc_body).expect("served STC decodes");
        assert_eq!(downloaded.to_json(), model_a_json);
        let (status, json_body) = request(addr, "GET", "/model?format=json", b"");
        assert_eq!(status, 200);
        assert_eq!(body_text(&json_body).trim_end(), model_a_json.trim_end());
        let (status, _) = request(addr, "GET", "/model?format=bogus", b"");
        assert_eq!(status, 400);

        // Summaries from STC bodies are byte-identical to CSV bodies.
        let (status, csv_resp) = request(addr, "POST", "/summarize", fx.trip_csvs[0].as_bytes());
        assert_eq!(status, 200, "{}", body_text(&csv_resp));
        let (status, stc_resp) = request(addr, "POST", "/summarize?format=stc", &single_stc);
        assert_eq!(status, 200, "{}", body_text(&stc_resp));
        assert_eq!(stc_resp, csv_resp);

        // Batch: one line per trip in container order, matching the CSV
        // blank-line batch byte for byte.
        let batch_body: String = fx.trip_csvs.join("\n");
        let (status, csv_batch) = request(addr, "POST", "/summarize_batch", batch_body.as_bytes());
        assert_eq!(status, 200);
        let (status, stc_batch) =
            request(addr, "POST", "/summarize_batch?format=stc", &stc_container);
        assert_eq!(status, 200);
        assert_eq!(stc_batch, csv_batch);

        // A multi-trip container on the single-trip endpoint is typed.
        let (status, body) = request(addr, "POST", "/summarize?format=stc", &stc_container);
        assert_eq!(status, 422);
        assert!(body_text(&body).contains("exactly one"), "{}", body_text(&body));
        // Corrupt container: typed 422, not a hang or a 500. (Cut deep —
        // shaving a byte or two only removes alignment padding, which the
        // reader rightly tolerates.)
        let mut corrupt = single_stc.clone();
        let half = corrupt.len() / 2;
        corrupt.truncate(half);
        let (status, _) = request(addr, "POST", "/summarize?format=stc", &corrupt);
        assert_eq!(status, 422);

        // Binary model hot-swap: magic-sniffed, no query parameter.
        let (status, body) = request(addr, "POST", "/model", &write_model_stc(&model_b));
        assert_eq!(status, 200, "{}", body_text(&body));
        assert!(body_text(&body).contains("\"model_version\": 2"));
        for (csv, expect) in fx.trip_csvs.iter().zip(&cold_b) {
            let (status, body) = request(addr, "POST", "/summarize", csv.as_bytes());
            match expect {
                Some(text) => assert_eq!((status, body_text(&body)), (200, text.clone())),
                None => assert_eq!(status, 422),
            }
        }
        // Corrupt binary model: typed 422, generation unchanged.
        let mut bad_model = write_model_stc(&model_b);
        bad_model.truncate(bad_model.len() / 2);
        let (status, body) = request(addr, "POST", "/model", &bad_model);
        assert_eq!(status, 422, "{}", body_text(&body));
        let (status, body) = request(addr, "GET", "/healthz", b"");
        assert_eq!(status, 200);
        assert!(body_text(&body).contains("\"model_version\": 2"), "{}", body_text(&body));
    });
}

/// Routing edges: unknown path 404, wrong method 405, bad params 400.
#[test]
fn routing_rejects_are_typed() {
    let fx = Fixture::new();
    let server = Server::bind(
        &fx.world.net,
        &fx.world.registry,
        fx.train(20, 1001),
        SummarizerConfig::default(),
        ServeConfig::default(),
    )
    .expect("bind");
    with_running(&server, |addr| {
        let (status, _) = request(addr, "GET", "/nope", b"");
        assert_eq!(status, 404);
        let (status, _) = request(addr, "GET", "/summarize", b"");
        assert_eq!(status, 405);
        let (status, _) = request(addr, "POST", "/healthz", b"");
        assert_eq!(status, 405);
        let (status, _) = request(addr, "POST", "/summarize?k=many", b"x");
        assert_eq!(status, 400);
        let (status, _) = request(addr, "POST", "/ingest", b"");
        assert_eq!(status, 400);
        let (status, body) = request(addr, "POST", "/model", b"not json");
        assert_eq!(status, 422, "{}", body_text(&body));
    });
}
