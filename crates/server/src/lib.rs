//! Long-lived HTTP serving layer over the stmaker summarization stack.
//!
//! The paper frames summarization as an offline batch step; the ROADMAP
//! north-star is the same pipeline as a service under heavy traffic. This
//! crate is that frontend: a std-only HTTP/1.1 server (no framework, no
//! async runtime — `TcpListener` + a scoped worker pool, the same
//! threading idiom as `stmaker-exec`) exposing the pipeline as endpoints:
//!
//! | endpoint                | what it does                                       |
//! |-------------------------|----------------------------------------------------|
//! | `POST /summarize`       | one trip body (CSV/JSONL/STC1) → summary text      |
//! | `POST /summarize_batch` | many trips (blank-line blocks or one STC1 container) → one summary per line |
//! | `POST /ingest`          | streaming push into a [`StreamingSummarizer`] session |
//! | `GET /model`            | serving parameters; `?format=stc\|json` downloads the model |
//! | `POST /model`           | hot-swap a new [`TrainedModel`] (JSON or STC1 body, sniffed) |
//! | `GET /healthz`          | liveness + current model version                   |
//! | `GET /metrics`          | the obs [`Report`](stmaker::Report) as JSON        |
//! | `POST /shutdown`        | graceful drain: finish queued requests, then exit  |
//!
//! # Determinism contract
//!
//! A served summary is **byte-identical** to what `stmaker-cli summarize`
//! prints for the same input: both paths load points through the same
//! `stmaker-io` readers under the same [`SanitizePolicy`] and call the
//! same [`Summarizer`] entry points (the batch endpoint fans out through
//! the `stmaker-exec` pool inside [`Summarizer::summarize_batch_points`],
//! whose merge is index-preserving). The e2e tests and the CI "Serve
//! smoke" step `cmp` the two byte-for-byte.
//!
//! # Model hot-swap and the cache-generation invariant
//!
//! The model slot is `Mutex<Arc<Generation>>` (ArcSwap-style: writers
//! swap the `Arc`, readers clone it and work lock-free afterwards). Each
//! [`Generation`] owns its *own* [`Summarizer`] — and therefore its own
//! `CachedRoutes`, built fresh by [`Summarizer::try_from_model`]. That is
//! the fix for the cache-staleness bug this PR headlines: route-cache
//! entries are keyed by landmark pair, not model identity (including
//! memoized *negative* answers), so a swapped-in model must never see the
//! previous generation's cache. Swapping the whole generation atomically
//! makes stale reuse structurally impossible: in-flight requests finish
//! against the generation they started with, new requests see the new
//! model with a cold cache. See `cached_routes` ("one cache, one model")
//! and DESIGN.md §15.
//!
//! # Backpressure
//!
//! Admission control is a bounded handoff queue: the accept loop answers
//! `429 Too Many Requests` the moment the queue is at `queue_depth`, and
//! `503 Service Unavailable` once a drain began — typed, immediate
//! rejections instead of unbounded buffering (tail latency under overload
//! is the cost the DESIGN doc's serving scenario refuses to pay).

use std::collections::{BTreeMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

use stmaker::{
    standard_features, FeatureWeights, Recorder, StreamConfig, StreamingSummarizer, SummarizeError,
    Summarizer, SummarizerConfig, TrainedModel,
};
use stmaker_io::{
    is_stc, read_model_stc, read_raw_points_csv, read_raw_points_jsonl, read_raw_trips_stc,
    read_trajectory_csv, read_trajectory_jsonl, write_model_stc,
};
use stmaker_poi::LandmarkRegistry;
use stmaker_road::RoadNetwork;
use stmaker_trajectory::{sanitize, RawPoint, RawTrajectory, SanitizeConfig, SanitizePolicy};

mod http;

use http::{json_str, HttpError, Request, Response};

/// Serving parameters. `Default` is tuned for tests (loopback, ephemeral
/// port); the `serve` CLI subcommand overrides from flags.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:8080`; port 0 picks an ephemeral port
    /// (read it back via [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads handling requests; 0 = one per available core,
    /// capped at 8.
    pub workers: usize,
    /// Bound on accepted-but-unserviced connections; at the bound new
    /// connections are answered `429` immediately.
    pub queue_depth: usize,
    /// Cap on a request body, bytes; beyond it the request is `413`.
    pub max_body_bytes: usize,
    /// Per-connection read/write timeout.
    pub io_timeout: Duration,
    /// Default ingest-hardening policy for request bodies; a request may
    /// override with `?sanitize=POLICY`. `None` = strict parsing.
    pub sanitize: Option<SanitizePolicy>,
    /// Bound on concurrently open `/ingest` sessions.
    pub max_sessions: usize,
    /// Bound on buffered points per `/ingest` session.
    pub max_session_points: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_owned(),
            workers: 0,
            queue_depth: 64,
            max_body_bytes: 8 * 1024 * 1024,
            io_timeout: Duration::from_secs(10),
            sanitize: None,
            max_sessions: 64,
            max_session_points: 100_000,
        }
    }
}

/// Why the server could not be brought up.
#[derive(Debug)]
pub enum ServeError {
    /// The listen socket could not be bound.
    Bind {
        /// The requested address.
        addr: String,
        /// The OS-level failure.
        message: String,
    },
    /// The initial model does not fit the serving registry.
    Model(SummarizeError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Bind { addr, message } => write!(f, "cannot bind {addr}: {message}"),
            ServeError::Model(e) => write!(f, "cannot load model: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// One immutable (model, summarizer, route-cache) unit. Swapped as a
/// whole so cache entries can never outlive the model they memoize.
struct Generation<'w> {
    /// Monotonic model version; generation 1 is the model served at bind.
    version: u64,
    summarizer: Summarizer<'w>,
}

/// An open `/ingest` session: the accepted points so far plus drop
/// counters. Points are replayed through a fresh [`StreamingSummarizer`]
/// on every request — sessions survive model hot-swaps that way (the
/// replay always runs against the *current* generation), at a per-request
/// cost linear in session length, which `max_session_points` bounds.
#[derive(Default)]
struct Session {
    points: Vec<RawPoint>,
    dropped_invalid: u64,
    dropped_out_of_order: u64,
}

/// Wire encoding of a trip body, selected by the `format` query
/// parameter. Absent (or unrecognized) values keep the original CSV
/// default, matching the pre-STC behavior byte for byte.
#[derive(Clone, Copy, PartialEq)]
enum BodyFormat {
    Csv,
    Jsonl,
    Stc,
}

impl BodyFormat {
    fn of(req: &Request) -> Self {
        match req.query("format") {
            Some("jsonl") => BodyFormat::Jsonl,
            Some("stc") => BodyFormat::Stc,
            _ => BodyFormat::Csv,
        }
    }
}

/// Writes `resp` and closes `stream` without losing the response to a TCP
/// reset: closing a socket with unread received data RSTs the connection,
/// which can discard the response out of the peer's receive buffer — the
/// rejection paths answer *before* reading the request, so they would hit
/// exactly that. Send FIN first, then drain (bounded) until the peer
/// closes.
fn respond_and_close(mut stream: TcpStream, resp: &Response) -> u64 {
    let n = resp.write_to(&mut stream).unwrap_or(0);
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let mut sink = [0u8; 4096];
    for _ in 0..64 {
        match std::io::Read::read(&mut stream, &mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => continue,
        }
    }
    n
}

/// Poison-absorbing lock helper (the `stmaker-cache` idiom): a poisoned
/// mutex only means another worker panicked mid-request; serving state is
/// still internally consistent, so keep serving.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

/// Poison-absorbing condvar wait, same contract as [`lock`].
fn wait<'g, T>(cv: &Condvar, g: MutexGuard<'g, T>) -> MutexGuard<'g, T> {
    match cv.wait(g) {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

/// The serving frontend. Borrows the world (`RoadNetwork`,
/// `LandmarkRegistry`) like every other consumer of the stack; owns the
/// listen socket, the generation slot, the admission queue, and the
/// ingest session table.
pub struct Server<'w> {
    net: &'w RoadNetwork,
    registry: &'w LandmarkRegistry,
    cfg: ServeConfig,
    /// Template config each generation's summarizer is assembled from
    /// (threads, route-cache size, spatial index, recorder).
    base_cfg: SummarizerConfig,
    listener: TcpListener,
    addr: SocketAddr,
    slot: Mutex<Arc<Generation<'w>>>,
    queue: Mutex<VecDeque<TcpStream>>,
    queue_cv: Condvar,
    stop: AtomicBool,
    sessions: Mutex<BTreeMap<String, Session>>,
    obs: Recorder,
}

impl<'w> Server<'w> {
    /// Binds the listen socket and installs `model` as generation 1.
    ///
    /// `base_cfg` carries the serving-path knobs every generation shares —
    /// threads, `--route-cache` capacity, spatial index, recorder; the
    /// feature set is the standard one with uniform weights, matching the
    /// CLI serving path.
    pub fn bind(
        net: &'w RoadNetwork,
        registry: &'w LandmarkRegistry,
        model: TrainedModel,
        base_cfg: SummarizerConfig,
        cfg: ServeConfig,
    ) -> Result<Self, ServeError> {
        let features = standard_features();
        let weights = FeatureWeights::uniform(&features);
        let summarizer =
            Summarizer::try_from_model(net, registry, model, features, weights, base_cfg.clone())
                .map_err(ServeError::Model)?;
        let obs = summarizer.recorder().clone();
        let listener = TcpListener::bind(&cfg.addr)
            .map_err(|e| ServeError::Bind { addr: cfg.addr.clone(), message: e.to_string() })?;
        let addr = listener
            .local_addr()
            .map_err(|e| ServeError::Bind { addr: cfg.addr.clone(), message: e.to_string() })?;
        Ok(Self {
            net,
            registry,
            cfg,
            base_cfg,
            listener,
            addr,
            slot: Mutex::new(Arc::new(Generation { version: 1, summarizer })),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            stop: AtomicBool::new(false),
            sessions: Mutex::new(BTreeMap::new()),
            obs,
        })
    }

    /// The bound address (resolves port 0 to the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Worker-thread count after resolving `workers == 0` to the core
    /// count (capped at 8 — serving is I/O-light, summarization itself
    /// parallelizes through the exec pool per request).
    pub fn worker_count(&self) -> usize {
        if self.cfg.workers > 0 {
            return self.cfg.workers;
        }
        std::thread::available_parallelism().map(usize::from).unwrap_or(4).min(8)
    }

    /// Serves until [`Server::shutdown`] (or `POST /shutdown`) and the
    /// queue drains. Blocks the calling thread; workers are scoped, so
    /// returning means every in-flight request finished.
    pub fn run(&self) {
        self.publish_gauges();
        std::thread::scope(|s| {
            for _ in 0..self.worker_count() {
                s.spawn(|| self.worker_loop());
            }
            self.accept_loop();
            self.queue_cv.notify_all();
        });
    }

    /// Flips the drain flag and unblocks the accept loop. Safe to call
    /// from any thread, including a worker mid-request.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
        // `accept` has no timeout; a loopback connection is the portable
        // way to wake it so it observes the flag.
        let _ = TcpStream::connect(self.addr);
        self.queue_cv.notify_all();
    }

    /// Whether a drain has begun.
    pub fn is_shutting_down(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    // -- threading ---------------------------------------------------------

    fn accept_loop(&self) {
        loop {
            let stream = match self.listener.accept() {
                Ok((s, _)) => s,
                Err(_) => {
                    if self.is_shutting_down() {
                        break;
                    }
                    continue;
                }
            };
            if self.is_shutting_down() {
                // Drain began: answer the typed unavailable error rather
                // than letting the connection hang, then stop accepting.
                self.obs.add("serve.rejected_unavailable", 1);
                respond_and_close(stream, &Response::error(503, "server is draining"));
                break;
            }
            let _ = stream.set_read_timeout(Some(self.cfg.io_timeout));
            let _ = stream.set_write_timeout(Some(self.cfg.io_timeout));
            let _ = stream.set_nodelay(true);
            let mut q = lock(&self.queue);
            if q.len() >= self.cfg.queue_depth {
                drop(q);
                self.obs.add("serve.rejected_busy", 1);
                respond_and_close(stream, &Response::error(429, "request queue is full"));
            } else {
                q.push_back(stream);
                drop(q);
                self.queue_cv.notify_one();
            }
        }
        self.queue_cv.notify_all();
    }

    fn worker_loop(&self) {
        loop {
            let mut q = lock(&self.queue);
            let job = loop {
                if let Some(s) = q.pop_front() {
                    break Some(s);
                }
                if self.is_shutting_down() {
                    break None;
                }
                q = wait(&self.queue_cv, q);
            };
            drop(q);
            match job {
                Some(stream) => self.handle_conn(stream),
                None => return,
            }
        }
    }

    fn handle_conn(&self, mut stream: TcpStream) {
        // lint: wallclock — latency feeds serve.request_ms/serve.request in the recorder only; no response reads the clock
        let t0 = std::time::Instant::now();
        let parsed = http::read_request(&mut stream, self.cfg.max_body_bytes);
        let resp = match parsed {
            Ok(req) => {
                self.obs.add("serve.requests", 1);
                self.obs.add("serve.bytes_in", req.wire_bytes);
                self.route(&req)
            }
            // Nothing arrived at all: a port probe or the shutdown wake
            // connection. Not a request; not worth a counter.
            Err(HttpError::Disconnected { clean: true }) => return,
            Err(e) => {
                self.obs.add("serve.requests", 1);
                let status = match e {
                    HttpError::Timeout => 408,
                    HttpError::HeadTooLarge => 431,
                    HttpError::BodyTooLarge { .. } => 413,
                    _ => 400,
                };
                Response::error(status, &e.to_string())
            }
        };
        match resp.status {
            200..=299 => self.obs.add("serve.responses_ok", 1),
            500..=599 => self.obs.add("serve.responses_server_error", 1),
            _ => self.obs.add("serve.responses_client_error", 1),
        }
        let written = respond_and_close(stream, &resp);
        if written > 0 {
            self.obs.add("serve.bytes_out", written);
        }
        let dt = t0.elapsed();
        self.obs.observe_ms("serve.request_ms", dt.as_secs_f64() * 1e3);
        self.obs.span_observed("serve.request", dt);
    }

    // -- generation slot ---------------------------------------------------

    /// The current generation; requests clone the `Arc` once and never
    /// touch the slot again, so a concurrent swap cannot change the model
    /// (or the cache) under a request already in flight.
    fn current(&self) -> Arc<Generation<'w>> {
        lock(&self.slot).clone()
    }

    /// Builds a full generation from `model` — fresh summarizer, fresh
    /// route cache — and swaps it in. The expensive assembly runs before
    /// the slot lock; the critical section is a pointer swap.
    fn swap_in(&self, model: TrainedModel) -> Result<u64, SummarizeError> {
        let features = standard_features();
        let weights = FeatureWeights::uniform(&features);
        let next = Summarizer::try_from_model(
            self.net,
            self.registry,
            model,
            features,
            weights,
            self.base_cfg.clone(),
        )?;
        let mut slot = lock(&self.slot);
        let version = slot.version + 1;
        *slot = Arc::new(Generation { version, summarizer: next });
        drop(slot);
        self.obs.add("serve.model_swaps", 1);
        self.obs.gauge("serve.model_version", version as f64); // cast-ok: gauge display
        Ok(version)
    }

    fn publish_gauges(&self) {
        let gen = self.current();
        self.obs.gauge("serve.model_version", gen.version as f64); // cast-ok: gauge display
        self.obs.gauge("serve.workers", self.worker_count() as f64); // cast-ok: gauge display
        self.obs.gauge("serve.queue_depth", self.cfg.queue_depth as f64); // cast-ok: gauge display
        let sessions = lock(&self.sessions).len();
        self.obs.gauge("serve.sessions_active", sessions as f64); // cast-ok: gauge display
    }

    // -- routing -----------------------------------------------------------

    fn route(&self, req: &Request) -> Response {
        match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/healthz") => self.handle_healthz(),
            ("GET", "/model") => self.handle_model_get(req),
            ("POST", "/model") => self.handle_model_post(req),
            ("GET", "/metrics") => self.handle_metrics(),
            ("POST", "/summarize") => self.handle_summarize(req),
            ("POST", "/summarize_batch") => self.handle_batch(req),
            ("POST", "/ingest") => self.handle_ingest(req),
            ("POST", "/shutdown") => self.handle_shutdown(),
            (
                _,
                "/healthz" | "/model" | "/metrics" | "/summarize" | "/summarize_batch" | "/ingest"
                | "/shutdown",
            ) => Response::error(405, "method not allowed for this endpoint"),
            _ => Response::error(404, "unknown endpoint"),
        }
    }

    fn handle_healthz(&self) -> Response {
        let gen = self.current();
        Response::json(200, format!("{{\"status\": \"ok\", \"model_version\": {}}}\n", gen.version))
    }

    /// Content negotiation over the `format` query parameter:
    /// `?format=stc` streams the columnar STC1 encoding, `?format=json`
    /// the full canonical-JSON model, and no parameter keeps the original
    /// metadata summary (so pre-existing clients see unchanged output).
    fn handle_model_get(&self, req: &Request) -> Response {
        let gen = self.current();
        let model = gen.summarizer.model();
        match req.query("format") {
            Some("stc") => return Response::binary(200, write_model_stc(model)),
            Some("json") => {
                let mut body = model.to_json();
                if !body.ends_with('\n') {
                    body.push('\n');
                }
                return Response::json(200, body);
            }
            Some(other) => {
                return Response::error(400, &format!("unknown model format {other:?}"));
            }
            None => {}
        }
        let cfg = gen.summarizer.config();
        Response::json(
            200,
            format!(
                "{{\"model_version\": {}, \"n_trained\": {}, \"registry_len\": {}, \
                 \"threads\": {}, \"route_cache\": {}, \"workers\": {}, \"queue_depth\": {}}}\n",
                gen.version,
                model.n_trained,
                self.registry.len(),
                cfg.threads,
                cfg.route_cache,
                self.worker_count(),
                self.cfg.queue_depth,
            ),
        )
    }

    /// Accepts either encoding, sniffed off the body's magic bytes: an
    /// `STC1` prefix decodes through the columnar reader, anything else is
    /// the original UTF-8 JSON path. Both converge on the same
    /// [`TrainedModel`] before the swap — the encodings are equivalent by
    /// the round-trip contract, so the serving behavior cannot depend on
    /// which wire format delivered the model.
    fn handle_model_post(&self, req: &Request) -> Response {
        let model = if is_stc(&req.body) {
            match read_model_stc(&req.body) {
                Ok(m) => m,
                Err(e) => return Response::error(422, &format!("model does not decode: {e}")),
            }
        } else {
            let Ok(text) = std::str::from_utf8(&req.body) else {
                return Response::error(400, "model body is not valid UTF-8");
            };
            match TrainedModel::from_json(text) {
                Ok(m) => m,
                Err(e) => return Response::error(422, &format!("model does not parse: {e}")),
            }
        };
        match self.swap_in(model) {
            Ok(version) => Response::json(200, format!("{{\"model_version\": {version}}}\n")),
            Err(e) => Response::error(422, &e.to_string()),
        }
    }

    fn handle_metrics(&self) -> Response {
        self.publish_gauges();
        let mut body = self.obs.report().to_json_pretty();
        if !body.ends_with('\n') {
            body.push('\n');
        }
        Response::json(200, body)
    }

    fn handle_shutdown(&self) -> Response {
        self.shutdown();
        Response::json(200, "{\"status\": \"draining\"}\n".to_owned())
    }

    // -- summarization endpoints -------------------------------------------

    /// `?sanitize=POLICY` override, falling back to the server default.
    /// `?sanitize=off` forces strict parsing even when the server default
    /// is lenient.
    fn request_policy(&self, req: &Request) -> Result<Option<SanitizePolicy>, Response> {
        match req.query("sanitize") {
            None => Ok(self.cfg.sanitize),
            Some("off") => Ok(None),
            Some(p) => p
                .parse::<SanitizePolicy>()
                .map(Some)
                .map_err(|e| Response::error(400, &format!("bad sanitize param: {e}"))),
        }
    }

    /// Parses one trip body exactly like the CLI's trip loader: strict
    /// reader without a policy, lenient reader + sanitizer + longest
    /// surviving segment with one — the byte-identity contract depends on
    /// the two paths staying in lockstep.
    fn parse_points(
        &self,
        text: &str,
        jsonl: bool,
        policy: Option<SanitizePolicy>,
    ) -> Result<Vec<RawPoint>, String> {
        match policy {
            None => {
                let traj =
                    if jsonl { read_trajectory_jsonl(text) } else { read_trajectory_csv(text) }
                        .map_err(|e| e.to_string())?;
                Ok(traj.points().to_vec())
            }
            Some(policy) => {
                let pts =
                    if jsonl { read_raw_points_jsonl(text) } else { read_raw_points_csv(text) }
                        .map_err(|e| e.to_string())?;
                let cfg = SanitizeConfig::with_policy(policy);
                let cleaned = sanitize(&pts, &cfg).map_err(|e| e.to_string())?;
                cleaned.report.record_into(&self.obs);
                cleaned
                    .longest()
                    .map(<[RawPoint]>::to_vec)
                    .ok_or_else(|| "no usable segment after sanitization".to_owned())
            }
        }
    }

    /// Applies the request policy to one trip decoded from an STC1
    /// container: strict means [`RawTrajectory::try_new`] (the same gate
    /// the CLI's `.stc` loader uses), lenient means the sanitize +
    /// longest-surviving-segment pipeline — lockstep with [`Self::parse_points`]
    /// so the byte-identity contract extends to the binary format.
    fn finish_stc_run(
        &self,
        pts: Vec<RawPoint>,
        policy: Option<SanitizePolicy>,
    ) -> Result<Vec<RawPoint>, String> {
        match policy {
            None => match RawTrajectory::try_new(pts) {
                Ok(traj) => Ok(traj.points().to_vec()),
                Err(e) => Err(e.to_string()),
            },
            Some(policy) => {
                let cfg = SanitizeConfig::with_policy(policy);
                let cleaned = sanitize(&pts, &cfg).map_err(|e| e.to_string())?;
                cleaned.report.record_into(&self.obs);
                cleaned
                    .longest()
                    .map(<[RawPoint]>::to_vec)
                    .ok_or_else(|| "no usable segment after sanitization".to_owned())
            }
        }
    }

    fn parse_k(req: &Request) -> Result<usize, Response> {
        match req.query("k") {
            None => Ok(0),
            Some(v) => {
                v.parse::<usize>().map_err(|_| Response::error(400, &format!("bad k param {v:?}")))
            }
        }
    }

    fn handle_summarize(&self, req: &Request) -> Response {
        let k = match Self::parse_k(req) {
            Ok(k) => k,
            Err(r) => return r,
        };
        let policy = match self.request_policy(req) {
            Ok(p) => p,
            Err(r) => return r,
        };
        let format = BodyFormat::of(req);
        let points = if format == BodyFormat::Stc {
            let mut runs = match read_raw_trips_stc(&req.body) {
                Ok(r) => r,
                Err(e) => return Response::error(422, &e.to_string()),
            };
            let n = runs.len();
            let Some(run) = runs.pop().filter(|_| n == 1) else {
                return Response::error(
                    422,
                    &format!(
                        "STC container holds {n} trips; this endpoint takes exactly one \
                         (use /summarize_batch)"
                    ),
                );
            };
            match self.finish_stc_run(run, policy) {
                Ok(p) => p,
                Err(e) => return Response::error(422, &e),
            }
        } else {
            let Ok(text) = std::str::from_utf8(&req.body) else {
                return Response::error(400, "body is not valid UTF-8");
            };
            match self.parse_points(text, format == BodyFormat::Jsonl, policy) {
                Ok(p) => p,
                Err(e) => return Response::error(422, &e),
            }
        };
        let gen = self.current();
        let result = if k == 0 {
            gen.summarizer.summarize_points(&points)
        } else {
            match RawTrajectory::try_new(points) {
                Ok(raw) => gen.summarizer.summarize_k(&raw, k),
                Err(e) => return Response::error(422, &e.to_string()),
            }
        };
        match result {
            // Trailing newline matches `stmaker-cli summarize`'s `println!`
            // so the two outputs `cmp` equal.
            Ok(s) => Response::text(200, format!("{}\n", s.text)),
            Err(e) => Response::error(422, &e.to_string()),
        }
    }

    fn handle_batch(&self, req: &Request) -> Response {
        let k = match Self::parse_k(req) {
            Ok(k) => k,
            Err(r) => return r,
        };
        let policy = match self.request_policy(req) {
            Ok(p) => p,
            Err(r) => return r,
        };
        let format = BodyFormat::of(req);
        // Per-trip parse failures become per-line errors, not a failed
        // request — index alignment with the input trips is the contract.
        // (Container-level STC corruption still fails the whole request:
        // there is no trip boundary left to align to.)
        let mut parse_errors: Vec<Option<String>> = Vec::new();
        let mut trips: Vec<Vec<RawPoint>> = Vec::new();
        if format == BodyFormat::Stc {
            let runs = match read_raw_trips_stc(&req.body) {
                Ok(r) => r,
                Err(e) => return Response::error(422, &e.to_string()),
            };
            if runs.is_empty() {
                return Response::error(422, "empty batch: STC container holds no trips");
            }
            for run in runs {
                match self.finish_stc_run(run, policy) {
                    Ok(p) => {
                        trips.push(p);
                        parse_errors.push(None);
                    }
                    Err(e) => {
                        trips.push(Vec::new());
                        parse_errors.push(Some(e));
                    }
                }
            }
        } else {
            let Ok(text) = std::str::from_utf8(&req.body) else {
                return Response::error(400, "body is not valid UTF-8");
            };
            let blocks: Vec<&str> = text
                .split("\n\n")
                .map(|b| b.trim_matches('\n'))
                .filter(|b| !b.trim().is_empty())
                .collect();
            if blocks.is_empty() {
                return Response::error(422, "empty batch: trips are separated by blank lines");
            }
            for block in &blocks {
                match self.parse_points(block, format == BodyFormat::Jsonl, policy) {
                    Ok(p) => {
                        trips.push(p);
                        parse_errors.push(None);
                    }
                    Err(e) => {
                        trips.push(Vec::new());
                        parse_errors.push(Some(e));
                    }
                }
            }
        }
        let gen = self.current();
        let results: Vec<Result<stmaker::Summary, SummarizeError>> = if k == 0 {
            // The throughput path: fans out through the stmaker-exec pool,
            // deterministic index-preserving merge.
            gen.summarizer.summarize_batch_points(&trips)
        } else {
            trips
                .iter()
                .map(|pts| {
                    RawTrajectory::try_new(pts.clone())
                        .map_err(SummarizeError::Input)
                        .and_then(|raw| gen.summarizer.summarize_k(&raw, k))
                })
                .collect()
        };
        let mut out = String::new();
        for (i, result) in results.into_iter().enumerate() {
            let line = match (&parse_errors[i], result) {
                (Some(e), _) => format!("error: {e}"),
                (None, Ok(s)) => s.text,
                (None, Err(e)) => format!("error: {e}"),
            };
            out.push_str(&line);
            out.push('\n');
        }
        Response::text(200, out)
    }

    // -- streaming ingest --------------------------------------------------

    fn handle_ingest(&self, req: &Request) -> Response {
        let Some(session_id) = req.query("session") else {
            return Response::error(400, "missing session param");
        };
        if session_id.is_empty()
            || session_id.len() > 64
            || !session_id.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
        {
            return Response::error(400, "session must be 1-64 chars of [A-Za-z0-9_-]");
        }
        let finish = req.query("finish").is_some_and(|v| v != "0");
        let Ok(text) = std::str::from_utf8(&req.body) else {
            return Response::error(400, "body is not valid UTF-8");
        };
        let jsonl = req.query("format") == Some("jsonl");
        // Always the lenient reader: the stream applies its own drop
        // policy per sample, mirroring `StreamingSummarizer`'s contract.
        let parsed = if jsonl { read_raw_points_jsonl(text) } else { read_raw_points_csv(text) };
        let new_points = match parsed {
            Ok(p) => p,
            Err(e) => return Response::error(422, &e.to_string()),
        };

        let gen = self.current();
        // The session table lock is held across the replay below, which
        // serializes /ingest requests against each other (only — the
        // batch endpoints never touch this lock). Sessions are the
        // convenience surface; bounded by max_session_points, the replay
        // is short.
        let mut sessions = lock(&self.sessions);
        if !sessions.contains_key(session_id) {
            if finish && new_points.is_empty() {
                return Response::error(404, "unknown session");
            }
            if sessions.len() >= self.cfg.max_sessions {
                return Response::error(429, "session table is full");
            }
            sessions.insert(session_id.to_owned(), Session::default());
            self.obs.add("serve.sessions_opened", 1);
        }
        let Some(session) = sessions.get_mut(session_id) else {
            return Response::error(500, "session vanished");
        };

        // Pre-filter with try_push's own acceptance rules (finite,
        // in-range, time-ordered) so the session buffer holds exactly the
        // accepted stream — the replay below then never drops, and drop
        // counters are not inflated replay after replay.
        let mut accepted: Vec<RawPoint> = Vec::with_capacity(new_points.len());
        let mut last_t = session.points.last().map(|p| p.t.0);
        for p in new_points {
            let (lat, lon) = (p.point.lat, p.point.lon);
            if !lat.is_finite()
                || !lon.is_finite()
                || !(-90.0..=90.0).contains(&lat)
                || !(-180.0..=180.0).contains(&lon)
            {
                session.dropped_invalid += 1;
                self.obs.add("stream.invalid_dropped", 1);
                continue;
            }
            if last_t.is_some_and(|t| p.t.0 < t) {
                session.dropped_out_of_order += 1;
                self.obs.add("stream.out_of_order_dropped", 1);
                continue;
            }
            last_t = Some(p.t.0);
            accepted.push(p);
        }
        if session.points.len() + accepted.len() > self.cfg.max_session_points {
            return Response::error(
                413,
                &format!("session exceeds {} buffered points", self.cfg.max_session_points),
            );
        }
        let replay_from = session.points.len();
        session.points.extend(accepted);

        let mut stream =
            match StreamingSummarizer::try_new(&gen.summarizer, StreamConfig::default()) {
                Ok(s) => s,
                Err(e) => return Response::error(500, &e.to_string()),
            };
        let mut refreshed = false;
        for (i, p) in session.points.iter().enumerate() {
            if let Ok(Some(_)) = stream.try_push(*p) {
                if i >= replay_from {
                    refreshed = true;
                }
            }
        }
        let n_points = session.points.len();
        let dropped_invalid = session.dropped_invalid;
        let dropped_out_of_order = session.dropped_out_of_order;

        let (summary, finished) = if finish {
            sessions.remove(session_id);
            self.obs.add("serve.sessions_finished", 1);
            match stream.finish() {
                Ok(s) => (Some(s.text), true),
                Err(e) => {
                    return Response::error(
                        422,
                        &format!("session closed, final summary failed: {e}"),
                    )
                }
            }
        } else {
            (stream.current().map(|s| s.text.clone()), false)
        };

        let summary_json = match &summary {
            Some(text) => json_str(text),
            None => "null".to_owned(),
        };
        Response::json(
            200,
            format!(
                "{{\"session\": {}, \"model_version\": {}, \"points\": {n_points}, \
                 \"dropped_invalid\": {dropped_invalid}, \
                 \"dropped_out_of_order\": {dropped_out_of_order}, \
                 \"refreshed\": {refreshed}, \"finished\": {finished}, \
                 \"summary\": {summary_json}}}\n",
                json_str(session_id),
                gen.version,
            ),
        )
    }
}

impl std::fmt::Debug for Server<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.addr)
            .field("workers", &self.worker_count())
            .field("queue_depth", &self.cfg.queue_depth)
            .finish_non_exhaustive()
    }
}
