//! Minimal HTTP/1.1 request/response handling over `std::net`.
//!
//! This is deliberately not a general HTTP implementation: it parses
//! exactly the subset the stmaker endpoints need — a request line, a small
//! header block (only `Content-Length` is consulted), an optional body —
//! and always answers `Connection: close`, so a connection carries one
//! request and one response. Keeping the wire layer this small is what
//! lets the crate stay std-only (ROADMAP item 1: no framework, no async
//! runtime) while remaining strict-tier panic-free.

use std::io::{Read, Write};
use std::net::TcpStream;

/// Upper bound on the request head (request line + headers). Anything
/// larger is a 431-class client error; 16 KiB is far beyond what the
/// stmaker endpoints (short paths, a handful of query params) ever need.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed request. Query parameters are kept as ordered pairs in arrival
/// order; lookups scan linearly (there are at most a handful).
pub(crate) struct Request {
    pub method: String,
    /// Path without the query string, percent-decoding *not* applied — the
    /// stmaker endpoints use fixed ASCII paths and `[a-z0-9_=&-]` queries.
    pub path: String,
    query: Vec<(String, String)>,
    pub body: Vec<u8>,
    /// Total bytes consumed off the wire (head + body), for `serve.bytes_in`.
    pub wire_bytes: u64,
}

impl Request {
    /// First value of query parameter `key`, if present.
    pub fn query(&self, key: &str) -> Option<&str> {
        self.query.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be parsed; each variant maps to one status code.
#[derive(Debug)]
pub(crate) enum HttpError {
    /// Peer closed before sending a complete head. If `clean` the peer
    /// sent nothing at all (health probes, the shutdown wake connection) —
    /// not worth a response or a counter.
    Disconnected { clean: bool },
    /// Read timed out mid-request → 408.
    Timeout,
    /// Malformed request line or header block → 400.
    Malformed(String),
    /// Head exceeded [`MAX_HEAD_BYTES`] → 431.
    HeadTooLarge,
    /// Declared `Content-Length` exceeds the configured cap → 413.
    BodyTooLarge { declared: usize, max: usize },
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Disconnected { .. } => write!(f, "client disconnected mid-request"),
            HttpError::Timeout => write!(f, "timed out reading request"),
            HttpError::Malformed(why) => write!(f, "malformed request: {why}"),
            HttpError::HeadTooLarge => {
                write!(f, "request head exceeds {MAX_HEAD_BYTES} bytes")
            }
            HttpError::BodyTooLarge { declared, max } => {
                write!(f, "request body of {declared} bytes exceeds the {max}-byte limit")
            }
        }
    }
}

impl std::error::Error for HttpError {}

/// Reads and parses one request off `stream`, honouring the stream's
/// configured read timeout and capping the body at `max_body` bytes.
pub(crate) fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, HttpError> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::HeadTooLarge);
        }
        let n = match stream.read(&mut chunk) {
            Ok(0) => return Err(HttpError::Disconnected { clean: buf.is_empty() }),
            Ok(n) => n,
            Err(e) if is_timeout(&e) => return Err(HttpError::Timeout),
            Err(e) => return Err(HttpError::Malformed(format!("read failed: {e}"))),
        };
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let (method, path, query) = parse_head_line(&head)?;
    let content_length = parse_content_length(&head)?;
    if content_length > max_body {
        return Err(HttpError::BodyTooLarge { declared: content_length, max: max_body });
    }
    // Body bytes that arrived glued to the head, then the remainder.
    let body_start = head_end + 4;
    let mut body: Vec<u8> = buf.get(body_start..).unwrap_or(&[]).to_vec();
    body.truncate(content_length);
    while body.len() < content_length {
        let want = (content_length - body.len()).min(chunk.len());
        let n = match stream.read(&mut chunk[..want]) {
            Ok(0) => return Err(HttpError::Disconnected { clean: false }),
            Ok(n) => n,
            Err(e) if is_timeout(&e) => return Err(HttpError::Timeout),
            Err(e) => return Err(HttpError::Malformed(format!("read failed: {e}"))),
        };
        body.extend_from_slice(&chunk[..n]);
    }
    let wire_bytes = (body_start + content_length) as u64;
    Ok(Request { method, path, query, body, wire_bytes })
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut)
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Splits `"POST /summarize?k=3 HTTP/1.1"` into method, path, and query
/// pairs. Versions other than HTTP/1.x are refused.
fn parse_head_line(head: &str) -> Result<(String, String, Vec<(String, String)>), HttpError> {
    let line = head.lines().next().unwrap_or("");
    let mut parts = line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(HttpError::Malformed(format!("bad request line {line:?}"))),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!("unsupported version {version:?}")));
    }
    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let query = query_str
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (k.to_owned(), v.to_owned()),
            None => (kv.to_owned(), String::new()),
        })
        .collect();
    Ok((method.to_owned(), path.to_owned(), query))
}

/// Extracts `Content-Length` (0 when absent). A malformed value is a 400:
/// silently reading zero bytes would desynchronize the connection.
fn parse_content_length(head: &str) -> Result<usize, HttpError> {
    for line in head.lines().skip(1) {
        let Some((name, value)) = line.split_once(':') else { continue };
        if name.trim().eq_ignore_ascii_case("content-length") {
            return value
                .trim()
                .parse::<usize>()
                .map_err(|_| HttpError::Malformed(format!("bad content-length {value:?}")));
        }
    }
    Ok(0)
}

/// An HTTP response; `write_to` serializes it with `Connection: close`.
pub(crate) struct Response {
    pub status: u16,
    content_type: &'static str,
    pub body: Vec<u8>,
}

impl Response {
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Self { status, content_type: "text/plain; charset=utf-8", body: body.into() }
    }

    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Self { status, content_type: "application/json", body: body.into() }
    }

    /// An STC1 binary payload (`GET /model?format=stc`).
    pub fn binary(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Self { status, content_type: "application/x-stc1", body: body.into() }
    }

    /// The uniform error shape: `{"error": <message>, "status": N}`.
    pub fn error(status: u16, message: &str) -> Self {
        let body = format!("{{\"error\": {}, \"status\": {status}}}\n", json_str(message));
        Self::json(status, body)
    }

    /// Serializes onto `stream`; returns the bytes written (for
    /// `serve.bytes_out`). Write failures are the client's loss — the
    /// caller counts them but has nobody left to tell.
    pub fn write_to(&self, stream: &mut TcpStream) -> std::io::Result<u64> {
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.status,
            status_text(self.status),
            self.content_type,
            self.body.len(),
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()?;
        Ok((head.len() + self.body.len()) as u64)
    }
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// JSON string literal for `s` (quotes included) — enough escaping for the
/// handful of hand-assembled response bodies; full documents go through
/// `Report::to_json_pretty`.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_line_parses_query_pairs() {
        let (m, p, q) =
            parse_head_line("POST /summarize?k=3&sanitize=drop&flag HTTP/1.1\r\n").unwrap();
        assert_eq!((m.as_str(), p.as_str()), ("POST", "/summarize"));
        assert_eq!(
            q,
            vec![
                ("k".to_owned(), "3".to_owned()),
                ("sanitize".to_owned(), "drop".to_owned()),
                ("flag".to_owned(), String::new()),
            ]
        );
    }

    #[test]
    fn head_line_rejects_garbage() {
        assert!(parse_head_line("").is_err());
        assert!(parse_head_line("GET /x").is_err());
        assert!(parse_head_line("GET /x SMTP/1.0").is_err());
        assert!(parse_head_line("GET /x HTTP/1.1 extra").is_err());
    }

    #[test]
    fn content_length_is_strict() {
        assert_eq!(parse_content_length("POST / HTTP/1.1\r\nContent-Length: 12\r\n").unwrap(), 12);
        assert_eq!(parse_content_length("POST / HTTP/1.1\r\nHost: x\r\n").unwrap(), 0);
        assert!(parse_content_length("POST / HTTP/1.1\r\nContent-Length: twelve\r\n").is_err());
    }

    #[test]
    fn json_str_escapes_controls() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }
}
