//! HTTP serving-layer load benchmark: N client threads hammering a live
//! `stmaker-server` on a loopback socket, with the byte-identity
//! guarantee the server is sold on asserted on **every** response.
//!
//! The workload mirrors the serving story (DESIGN.md §15): a fixed trip
//! corpus posted repeatedly to `POST /summarize` from concurrent
//! clients, plus one `POST /summarize_batch` sweep through the exec
//! pool. Every body that comes back over the wire must equal what the
//! CLI path (`Summarizer::summarize_points` + trailing newline) prints
//! for the same CSV — the server adds transport, never content.
//!
//! Latency percentiles are **not** measured by this harness: they come
//! from the server's own `serve.request_ms` histogram (the request
//! timer inside `handle_conn`), so the committed numbers are the same
//! ones `GET /metrics` serves in production. The bench only adds
//! wall-clock throughput across all clients.
//!
//! Results land — as gauges in the shared `stmaker-obs` report schema,
//! alongside the server's own `serve.*` counters and histograms — in
//! `BENCH_serve.json` (override with `STMAKER_OBS_OUT`);
//! `cargo xtask obs-schema BENCH_serve.json` validates them.
//! `STMAKER_BENCH_SMOKE=1` shrinks the corpus and client count for CI.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use stmaker::{standard_features, FeatureWeights, Recorder, Summarizer, SummarizerConfig};
use stmaker_generator::{TripConfig, TripGenerator, World, WorldConfig};
use stmaker_io::{read_trajectory_csv, write_trajectory_csv};
use stmaker_server::{ServeConfig, Server};

/// Route slots in the serving cache — above the distinct pair count of
/// the corpus, so warm passes measure hits rather than eviction churn.
const CACHE_CAPACITY: usize = 256;

fn request(addr: SocketAddr, method: &str, path: &str, body: &[u8]) -> (u16, Vec<u8>) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(60))).expect("timeout");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    s.write_all(head.as_bytes()).expect("write head");
    s.write_all(body).expect("write body");
    let mut raw = Vec::new();
    s.read_to_end(&mut raw).expect("read response");
    let head_end = raw.windows(4).position(|w| w == b"\r\n\r\n").expect("response head");
    let status: u16 = std::str::from_utf8(&raw[..head_end])
        .expect("ascii head")
        .split(' ')
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    (status, raw[head_end + 4..].to_vec())
}

fn main() {
    let smoke = std::env::var("STMAKER_BENCH_SMOKE").is_ok();
    let (n_train, n_trips, clients, passes) = if smoke { (60, 4, 2, 2) } else { (200, 8, 4, 20) };

    let world = World::generate(WorldConfig::small(77));
    let gen = TripGenerator::new(&world, TripConfig::default());
    let trip_csvs: Vec<String> = gen
        .generate_corpus(n_trips, 2002)
        .into_iter()
        .map(|t| write_trajectory_csv(&t.raw))
        .collect();
    let corpus: Vec<_> = gen.generate_corpus(n_train, 1001).into_iter().map(|t| t.raw).collect();

    let features = standard_features();
    let weights = FeatureWeights::uniform(&features);
    let model = Summarizer::train(
        &world.net,
        &world.registry,
        &corpus,
        features,
        weights,
        SummarizerConfig::default(),
    )
    .into_model();

    // CLI-path reference: what `stmaker-cli summarize` prints for each
    // trip CSV. The wire bytes must match these exactly.
    let reference: Vec<Option<String>> = {
        let features = standard_features();
        let weights = FeatureWeights::uniform(&features);
        let model_twin = Summarizer::train(
            &world.net,
            &world.registry,
            &corpus,
            features,
            weights,
            SummarizerConfig::default(),
        )
        .into_model();
        let features = standard_features();
        let weights = FeatureWeights::uniform(&features);
        let s = Summarizer::try_from_model(
            &world.net,
            &world.registry,
            model_twin,
            features,
            weights,
            SummarizerConfig::default(),
        )
        .expect("registry matches");
        trip_csvs
            .iter()
            .map(|csv| {
                let points = read_trajectory_csv(csv).expect("fixture parses").points().to_vec();
                s.summarize_points(&points).ok().map(|sum| format!("{}\n", sum.text))
            })
            .collect()
    };
    assert!(reference.iter().any(Option::is_some), "corpus must yield summarizable trips");

    let obs = Recorder::enabled();
    let host_cpus =
        std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1);
    obs.gauge("bench.host_cpus", host_cpus as f64); // cast-ok: CPU count

    let base_cfg =
        SummarizerConfig::default().with_route_cache(CACHE_CAPACITY).with_recorder(obs.clone());
    let server = Server::bind(&world.net, &world.registry, model, base_cfg, ServeConfig::default())
        .expect("bind loopback");

    let batch_body: String = trip_csvs.join("\n");
    let mut wall_ms = 0.0;
    std::thread::scope(|s| {
        s.spawn(|| server.run());
        let addr = server.local_addr();
        // lint: wallclock — benchmark harness: wall time is the measured quantity by design
        let t0 = Instant::now();
        std::thread::scope(|clients_scope| {
            for _client in 0..clients {
                clients_scope.spawn(|| {
                    for _pass in 0..passes {
                        for (csv, expect) in trip_csvs.iter().zip(&reference) {
                            let (status, body) =
                                request(addr, "POST", "/summarize", csv.as_bytes());
                            match expect {
                                Some(text) => {
                                    assert_eq!(status, 200);
                                    assert_eq!(
                                        std::str::from_utf8(&body).expect("utf-8 body"),
                                        text,
                                        "wire bytes must match the CLI path"
                                    );
                                }
                                None => assert_eq!(status, 422),
                            }
                        }
                    }
                });
            }
        });
        let (status, body) = request(addr, "POST", "/summarize_batch", batch_body.as_bytes());
        assert_eq!(status, 200);
        let got = String::from_utf8(body).expect("utf-8 batch");
        for (line, expect) in got.lines().zip(&reference) {
            match expect {
                Some(text) => assert_eq!(format!("{line}\n"), *text, "batch line must match"),
                None => assert!(line.starts_with("error:"), "{line}"),
            }
        }
        wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        server.shutdown();
    });

    let total_requests = clients * passes * trip_csvs.len() + 1;
    let throughput = if wall_ms > 0.0 {
        total_requests as f64 / (wall_ms / 1e3) // cast-ok: request count
    } else {
        0.0
    };

    // Percentiles come from the server's own request histogram — the
    // exact numbers `GET /metrics` would serve.
    let report = obs.report();
    let hist = report.histograms.get("serve.request_ms").expect("serve.request_ms histogram");
    assert!(
        hist.count >= total_requests as u64, // cast-ok: request count
        "server must have timed every request: {} < {total_requests}",
        hist.count
    );
    obs.gauge("bench.serve.clients", clients as f64); // cast-ok: client count
    obs.gauge("bench.serve.passes", passes as f64); // cast-ok: pass count
    obs.gauge("bench.serve.corpus", trip_csvs.len() as f64); // cast-ok: corpus size
    obs.gauge("bench.serve.requests", total_requests as f64); // cast-ok: request count
    obs.gauge("bench.serve.wall_ms", wall_ms);
    obs.gauge("bench.serve.throughput_rps", throughput);
    obs.gauge("bench.serve.p50_ms", hist.p50);
    obs.gauge("bench.serve.p95_ms", hist.p95);
    obs.gauge("bench.serve.p99_ms", hist.p99);
    println!(
        "{total_requests} requests from {clients} client(s): {throughput:.0} req/s, \
         p50 {:.3} ms, p95 {:.3} ms, p99 {:.3} ms (server-side histogram)",
        hist.p50, hist.p95, hist.p99,
    );
    println!("byte-identity: every wire response == CLI path ✓");

    let report = obs.report();
    println!("\n{}", stmaker_obs::stats::render(&report));
    // cargo runs benches with cwd = the package root; default to the
    // workspace root so the committed report is what gets refreshed.
    let path = std::env::var("STMAKER_OBS_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json").to_owned()
    });
    match report.write_json(&path) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("warning: cannot write {path}: {e}"),
    }
}
