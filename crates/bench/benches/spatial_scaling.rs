//! Spatial-index scaling benchmark: packed STR R-tree vs. uniform grid on
//! the city-scale corridor-query workload that dominates calibration.
//!
//! The measured quantity is the **candidate-query stage** — the
//! `LandmarkRegistry::candidates_along` corridor sweep that calibration
//! issues once per trajectory (DESIGN.md §14). Both backends then feed the
//! identical projection-refinement filter, so end-to-end calibrate times
//! dilute the index difference; the stage timing is where the R-tree's
//! packed traversal shows up undiluted. Train and batch-summarize wall
//! times are reported alongside for context.
//!
//! Asserted here (and mirrored by the `end_to_end` test
//! `summaries_byte_identical_across_spatial_index_backends`):
//!
//! * the per-trip candidate sets returned by the two backends are
//!   **byte-identical** — the R-tree refines with the exact float
//!   arithmetic the grid path uses (DESIGN.md §14);
//! * trained-model JSON and rendered summaries are byte-identical across
//!   backends at 1/2/4 worker threads;
//! * the R-tree answers the candidate-query stage ≥ 2× faster than the
//!   grid (full scale only; `STMAKER_BENCH_SMOKE=1` shrinks the world for
//!   CI and skips the timing assertion, which would be noise on a shared
//!   runner).
//!
//! Results land — as gauges plus the `spatial.*` work counters in the
//! shared `stmaker-obs` report schema — in `BENCH_spatial.json` (override
//! with `STMAKER_OBS_OUT`); `cargo xtask obs-schema BENCH_spatial.json`
//! validates them. Like the other report-producing benches this is a plain
//! `harness = false` binary: the deliverable is the report file, not a
//! Criterion estimate.

use std::time::Instant;

use stmaker::{standard_features, FeatureWeights, SpatialIndexKind, Summarizer, SummarizerConfig};
use stmaker_calibration::CalibrationParams;
use stmaker_eval::{ExperimentScale, Harness};
use stmaker_geo::{Polyline, SpatialStats};
use stmaker_poi::LandmarkId;
use stmaker_trajectory::RawTrajectory;

/// Thread counts the byte-identity sweep covers.
const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

fn main() {
    let smoke = std::env::var("STMAKER_BENCH_SMOKE").is_ok();
    let scale = if smoke {
        let mut s = ExperimentScale::quick();
        s.n_train = 120;
        s.n_test = 60;
        s
    } else {
        ExperimentScale::full()
    };
    let query_passes: usize = if smoke { 2 } else { 9 };

    let h = Harness::new(scale);
    let trips: Vec<RawTrajectory> = h.test.iter().map(|t| t.raw.clone()).collect();

    let obs = stmaker_obs::Recorder::enabled();
    let host_cpus =
        std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1);
    obs.gauge("bench.host_cpus", host_cpus as f64); // cast-ok: CPU count
    obs.gauge("bench.spatial.landmarks", h.world.registry.len() as f64); // cast-ok: registry size
    obs.gauge("bench.spatial.corpus", trips.len() as f64); // cast-ok: corpus size
    obs.gauge("bench.spatial.query_passes", query_passes as f64); // cast-ok: pass count

    // ── Candidate-query stage: corridor sweeps, grid vs. R-tree ──────
    // Exactly the probes calibration builds: the raw polyline resampled at
    // the calibration radius, swept at radius × 1.5.
    let params = CalibrationParams::default();
    let probes: Vec<Polyline> =
        trips.iter().map(|t| t.polyline().resample(params.radius_m.max(1.0))).collect();
    let corridor_m = params.radius_m * 1.5;

    let prepare = |kind: SpatialIndexKind| {
        let mut registry = h.world.registry.clone();
        registry.set_index_kind(kind);
        let mut stats = SpatialStats::default();
        // Warm-up pass doubles as the candidate-set capture for the
        // byte-identity check below.
        let mut sets: Vec<Vec<LandmarkId>> = Vec::with_capacity(probes.len());
        for probe in &probes {
            let mut out = Vec::new();
            registry.candidates_along(probe.points(), corridor_m, &mut out, &mut stats);
            sets.push(out);
        }
        (registry, stats, sets)
    };
    let (grid_registry, grid_stats, grid_sets) = prepare(SpatialIndexKind::Grid);
    let (rtree_registry, rtree_stats, rtree_sets) = prepare(SpatialIndexKind::Rtree);

    // One timed pass over the whole corpus. Backends are interleaved pass by
    // pass and scored by their minimum — the noise-robust estimator on a
    // shared runner, where a background hiccup can double any single pass.
    let timed_pass = |registry: &stmaker_poi::LandmarkRegistry| -> f64 {
        let mut out: Vec<LandmarkId> = Vec::new();
        let mut stats = SpatialStats::default();
        // lint: wallclock — benchmark harness: wall time is the measured quantity by design
        let t0 = Instant::now();
        for probe in &probes {
            registry.candidates_along(probe.points(), corridor_m, &mut out, &mut stats);
        }
        t0.elapsed().as_secs_f64() * 1e3
    };
    let (mut grid_ms, mut rtree_ms) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..query_passes {
        grid_ms = grid_ms.min(timed_pass(&grid_registry));
        rtree_ms = rtree_ms.min(timed_pass(&rtree_registry));
    }
    assert_eq!(
        rtree_sets, grid_sets,
        "per-trip candidate sets must be byte-identical across backends"
    );
    let candidates_speedup = if rtree_ms > 0.0 { grid_ms / rtree_ms } else { 1.0 };

    obs.gauge("bench.spatial.candidates.grid.ms", grid_ms);
    obs.gauge("bench.spatial.candidates.rtree.ms", rtree_ms);
    obs.gauge("bench.spatial.candidates.speedup", candidates_speedup);
    // Work counters for the R-tree sweep (the grid path only refines), so
    // `obs-schema --require-counters spatial.*` holds on this report too.
    obs.add("spatial.nodes_visited", rtree_stats.nodes_visited);
    obs.add("spatial.leaves_scanned", rtree_stats.leaves_scanned);
    obs.add("spatial.candidates_refined", rtree_stats.candidates_refined);
    obs.gauge("bench.spatial.grid.refined", grid_stats.candidates_refined as f64); // cast-ok: counter
    println!(
        "candidate-query stage over {} trips: grid {grid_ms:.1} ms/pass, \
         rtree {rtree_ms:.1} ms/pass ({candidates_speedup:.2}x)",
        probes.len(),
    );

    // ── End-to-end train + batch-summarize, grid vs. R-tree ──────────
    // Context numbers: the index is one stage among many here (projection
    // refinement, matching, partitioning), so the deltas are smaller than
    // the stage speedup above by design.
    let run = |kind: SpatialIndexKind, threads: usize| {
        let mut registry = h.world.registry.clone();
        registry.set_index_kind(kind);
        let raws = h.train_raw();
        let features = standard_features();
        let weights = FeatureWeights::uniform(&features);
        let cfg = SummarizerConfig::default().with_threads(threads).with_spatial_index(kind);
        // lint: wallclock — benchmark harness: wall time is the measured quantity by design
        let t0 = Instant::now();
        let s = Summarizer::train(&h.world.net, &registry, &raws, features, weights, cfg);
        let train_ms = t0.elapsed().as_secs_f64() * 1e3;
        // lint: wallclock — benchmark harness: wall time is the measured quantity by design
        let t1 = Instant::now();
        let texts: Vec<Option<String>> =
            s.summarize_batch(&trips).into_iter().map(|r| r.ok().map(|x| x.text)).collect();
        let batch_ms = t1.elapsed().as_secs_f64() * 1e3;
        (train_ms, batch_ms, s.model().to_json(), texts)
    };

    let (grid_train_ms, grid_batch_ms, model_ref, texts_ref) = run(SpatialIndexKind::Grid, 1);
    let (rtree_train_ms, rtree_batch_ms, model_rt, texts_rt) = run(SpatialIndexKind::Rtree, 1);
    assert!(texts_ref.iter().flatten().count() > 0, "corpus must yield summarizable trips");
    assert_eq!(model_rt, model_ref, "R-tree training changed model bytes");
    assert_eq!(texts_rt, texts_ref, "R-tree serving changed summary bytes");
    obs.gauge("bench.spatial.train.grid.ms", grid_train_ms);
    obs.gauge("bench.spatial.train.rtree.ms", rtree_train_ms);
    obs.gauge("bench.spatial.batch.grid.ms", grid_batch_ms);
    obs.gauge("bench.spatial.batch.rtree.ms", rtree_batch_ms);
    println!(
        "train: grid {grid_train_ms:.0} ms, rtree {rtree_train_ms:.0} ms; \
         batch-summarize: grid {grid_batch_ms:.0} ms, rtree {rtree_batch_ms:.0} ms"
    );

    // ── Byte-identity across backends × thread counts ────────────────
    for threads in THREAD_COUNTS {
        for kind in [SpatialIndexKind::Grid, SpatialIndexKind::Rtree] {
            if threads == 1 {
                continue; // covered by the timed single-thread runs above
            }
            let (_, _, model, texts) = run(kind, threads);
            assert_eq!(model, model_ref, "{kind} at {threads} thread(s) changed model bytes");
            assert_eq!(texts, texts_ref, "{kind} at {threads} thread(s) changed summary bytes");
        }
        obs.gauge(&format!("bench.identity.t{threads}"), 1.0);
    }
    println!("byte-identity: rtree == grid at {THREAD_COUNTS:?} threads ✓");

    if !smoke {
        assert!(
            candidates_speedup >= 2.0,
            "candidate-query speedup {candidates_speedup:.2}x below the 2x bar"
        );
    }

    let report = obs.report();
    println!("\n{}", stmaker_obs::stats::render(&report));
    // cargo runs benches with cwd = the package root; default to the
    // workspace root so the committed report is what gets refreshed.
    let path = std::env::var("STMAKER_OBS_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_spatial.json").to_owned()
    });
    match report.write_json(&path) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("warning: cannot write {path}: {e}"),
    }
}
