//! Telemetry-emitting pipeline run: summarizes a small corpus with an
//! enabled `stmaker-obs` recorder and writes the aggregated report —
//! the same JSON schema as the CLI's `--metrics-json` and the eval
//! crate's Fig. 12 binary — to `BENCH_obs.json` (override with
//! `STMAKER_OBS_OUT`). `cargo xtask obs-schema BENCH_obs.json` validates
//! the result.
//!
//! This is a plain `harness = false` binary rather than a Criterion
//! bench: the deliverable is the report file, not a timing estimate.

use stmaker::{standard_features, FeatureWeights, SummarizerConfig};
use stmaker_eval::{ExperimentScale, Harness};
use stmaker_obs::{Recorder, TraceClock};
use stmaker_trajectory::RawTrajectory;

fn main() {
    let mut scale = ExperimentScale::quick();
    scale.n_train = 120;
    scale.n_test = 80;
    let h = Harness::new(scale);

    // Journal-backed so the run can also emit a Chrome trace
    // (STMAKER_TRACE_OUT) alongside the aggregate report.
    let obs = Recorder::enabled_with_journal(stmaker_obs::DEFAULT_JOURNAL_CAPACITY);
    let features = standard_features();
    let weights = FeatureWeights::uniform(&features);
    let summarizer = h.train_summarizer(
        features,
        weights,
        SummarizerConfig::default().with_recorder(obs.clone()),
    );

    let mut ok = 0usize;
    for trip in &h.test {
        if summarizer.summarize(&trip.raw).is_ok() {
            ok += 1;
        }
    }
    // Exercise the k-constrained DP path too, so partition.dp_cells
    // reflects both Algorithm 1 variants.
    for (i, trip) in h.test.iter().take(20).enumerate() {
        let k = 1 + i % 4;
        let _ = summarizer.summarize_k(&trip.raw, k);
    }
    // A batch run populates the batch-only series: per-trip replayed
    // spans, merged worker counters, and the top-K slowest-trip
    // exemplars.
    let batch: Vec<RawTrajectory> = h.test.iter().take(40).map(|t| t.raw.clone()).collect();
    let batch_ok = summarizer.summarize_batch(&batch).iter().filter(|r| r.is_ok()).count();
    println!(
        "summarized {ok}/{} trips (+20 k-constrained runs, +{batch_ok}/{} batch)",
        h.test.len(),
        batch.len()
    );

    let report = obs.report();
    println!("\n{}", stmaker_obs::stats::render(&report));
    let path = std::env::var("STMAKER_OBS_OUT").unwrap_or_else(|_| "BENCH_obs.json".to_owned());
    match report.write_json(&path) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("warning: cannot write {path}: {e}"),
    }
    if let Ok(trace_path) = std::env::var("STMAKER_TRACE_OUT") {
        match std::fs::write(&trace_path, obs.chrome_trace(TraceClock::Logical)) {
            Ok(()) => println!("wrote {trace_path}"),
            Err(e) => eprintln!("warning: cannot write {trace_path}: {e}"),
        }
    }
}
