//! Telemetry-emitting pipeline run: summarizes a small corpus with an
//! enabled `stmaker-obs` recorder and writes the aggregated report —
//! the same JSON schema as the CLI's `--metrics-json` and the eval
//! crate's Fig. 12 binary — to `BENCH_obs.json` (override with
//! `STMAKER_OBS_OUT`). `cargo xtask obs-schema BENCH_obs.json` validates
//! the result.
//!
//! This is a plain `harness = false` binary rather than a Criterion
//! bench: the deliverable is the report file, not a timing estimate.

use stmaker::{standard_features, FeatureWeights, SummarizerConfig};
use stmaker_eval::{ExperimentScale, Harness};
use stmaker_obs::Recorder;

fn main() {
    let mut scale = ExperimentScale::quick();
    scale.n_train = 120;
    scale.n_test = 80;
    let h = Harness::new(scale);

    let obs = Recorder::enabled();
    let features = standard_features();
    let weights = FeatureWeights::uniform(&features);
    let summarizer = h.train_summarizer(
        features,
        weights,
        SummarizerConfig::default().with_recorder(obs.clone()),
    );

    let mut ok = 0usize;
    for trip in &h.test {
        if summarizer.summarize(&trip.raw).is_ok() {
            ok += 1;
        }
    }
    // Exercise the k-constrained DP path too, so partition.dp_cells
    // reflects both Algorithm 1 variants.
    for (i, trip) in h.test.iter().take(20).enumerate() {
        let k = 1 + i % 4;
        let _ = summarizer.summarize_k(&trip.raw, k);
    }
    println!("summarized {ok}/{} trips (+20 k-constrained runs)", h.test.len());

    let report = obs.report();
    println!("\n{}", stmaker_obs::stats::render(&report));
    let path = std::env::var("STMAKER_OBS_OUT").unwrap_or_else(|_| "BENCH_obs.json".to_owned());
    match report.write_json(&path) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("warning: cannot write {path}: {e}"),
    }
}
