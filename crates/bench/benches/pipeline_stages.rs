//! Stage-level ablation benchmarks of the summarization pipeline (Fig. 3):
//! where do the milliseconds of Fig. 12 actually go?
//!
//! * `stage/calibrate` — raw → symbolic rewriting (Sec. II-A);
//! * `stage/prepare` — calibration + map matching + feature extraction;
//! * `stage/partition` — similarity + DP on a prepared trajectory (Sec. IV);
//! * `stage/select_render` — irregular rates + templates given a partition;
//! * `stage/full` — the whole `summarize` call, for reference.
//!
//! Also benches training-side costs: `train/summarizer` builds the popular
//! routes + feature map from a 100-trip corpus.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use stmaker::{standard_features, FeatureWeights, Summarizer, SummarizerConfig};
use stmaker_calibration::{calibrate, CalibrationParams};
use stmaker_eval::{ExperimentScale, Harness};
use stmaker_trajectory::RawTrajectory;

fn setup() -> Harness {
    let mut scale = ExperimentScale::quick();
    scale.n_train = 120;
    scale.n_test = 60;
    Harness::new(scale)
}

fn stages(c: &mut Criterion) {
    let h = setup();
    let summarizer = h.train_default();
    let trips: Vec<RawTrajectory> = h.test.iter().map(|t| t.raw.clone()).collect();
    let prepared: Vec<_> = trips.iter().filter_map(|t| summarizer.prepare(t).ok()).collect();

    let mut group = c.benchmark_group("stage");
    group.sample_size(30);

    group.bench_function("calibrate", |b| {
        let mut i = 0;
        b.iter(|| {
            let raw = &trips[i % trips.len()];
            i += 1;
            black_box(
                calibrate(black_box(raw), &h.world.registry, CalibrationParams::default()).ok(),
            )
        });
    });

    group.bench_function("prepare", |b| {
        let mut i = 0;
        b.iter(|| {
            let raw = &trips[i % trips.len()];
            i += 1;
            black_box(summarizer.prepare(black_box(raw)).ok())
        });
    });

    group.bench_function("partition_select_render", |b| {
        let mut i = 0;
        b.iter(|| {
            let p = &prepared[i % prepared.len()];
            i += 1;
            black_box(summarizer.summarize_prepared(black_box(p), None).ok())
        });
    });

    group.bench_function("full", |b| {
        let mut i = 0;
        b.iter(|| {
            let raw = &trips[i % trips.len()];
            i += 1;
            black_box(summarizer.summarize(black_box(raw)).ok())
        });
    });
    group.finish();

    let mut group = c.benchmark_group("train");
    group.sample_size(10);
    let training: Vec<RawTrajectory> = h.train.iter().take(100).map(|t| t.raw.clone()).collect();
    group.bench_function("summarizer_100_trips", |b| {
        b.iter(|| {
            let features = standard_features();
            let weights = FeatureWeights::uniform(&features);
            let s = Summarizer::train(
                &h.world.net,
                &h.world.registry,
                black_box(&training),
                features,
                weights,
                SummarizerConfig::default(),
            );
            black_box(s.model().n_trained)
        });
    });
    group.finish();
}

criterion_group!(benches, stages);
criterion_main!(benches);
