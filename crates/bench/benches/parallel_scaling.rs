//! Parallel scaling of training and batch summarization: times
//! `Summarizer::train` and `Summarizer::summarize_batch` at 1/2/4/8 worker
//! threads over a fixed corpus and writes the timings — as gauges in the
//! shared `stmaker-obs` report schema — to `BENCH_parallel.json` (override
//! with `STMAKER_OBS_OUT`). `cargo xtask obs-schema BENCH_parallel.json`
//! validates the result.
//!
//! Also asserts the determinism contract while it is at it: the trained
//! model JSON at every thread count must be byte-identical to the 1-thread
//! run (stmaker-exec's fixed-shard reduce; DESIGN.md §10).
//!
//! Speedups are whatever the host gives: on a single-core container every
//! thread count measures ~1×, and the `bench.host_cpus` gauge records how
//! many CPUs were actually available so readers can interpret the numbers.
//!
//! This is a plain `harness = false` binary rather than a Criterion bench:
//! the deliverable is the report file, not a timing estimate.

use std::time::Instant;

use stmaker::{standard_features, FeatureWeights, SummarizerConfig};
use stmaker_eval::{ExperimentScale, Harness};
use stmaker_obs::Recorder;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn main() {
    let mut scale = ExperimentScale::quick();
    scale.n_train = 400;
    scale.n_test = 200;
    let h = Harness::new(scale);
    let trips: Vec<_> = h.test.iter().map(|t| t.raw.clone()).collect();

    let obs = Recorder::enabled();
    let host_cpus =
        std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1);
    obs.gauge("bench.host_cpus", host_cpus as f64); // cast-ok: CPU count
    obs.gauge("bench.corpus.train", h.train.len() as f64); // cast-ok: corpus size
    obs.gauge("bench.corpus.batch", trips.len() as f64); // cast-ok: corpus size

    let mut reference_json: Option<String> = None;
    let mut train_ms_1 = 0.0f64;
    let mut batch_ms_1 = 0.0f64;

    for threads in THREAD_COUNTS {
        let features = standard_features();
        let weights = FeatureWeights::uniform(&features);
        let cfg = SummarizerConfig::default().with_threads(threads);

        // lint: wallclock — benchmark harness: wall time is the measured quantity by design
        let t0 = Instant::now();
        let summarizer = h.train_summarizer(features, weights, cfg);
        let train_ms = t0.elapsed().as_secs_f64() * 1e3;

        let json = summarizer.model().to_json();
        match &reference_json {
            None => reference_json = Some(json),
            Some(reference) => assert_eq!(
                &json, reference,
                "trained model at {threads} threads must be byte-identical to 1 thread"
            ),
        }

        // lint: wallclock — benchmark harness: wall time is the measured quantity by design
        let t0 = Instant::now();
        let ok = summarizer.summarize_batch(&trips).iter().filter(|r| r.is_ok()).count();
        let batch_ms = t0.elapsed().as_secs_f64() * 1e3;

        obs.gauge(&format!("bench.train.t{threads}.ms"), train_ms);
        obs.gauge(&format!("bench.batch.t{threads}.ms"), batch_ms);
        if threads == 1 {
            train_ms_1 = train_ms;
            batch_ms_1 = batch_ms;
        }
        if train_ms > 0.0 {
            obs.gauge(&format!("bench.train.t{threads}.speedup"), train_ms_1 / train_ms);
        }
        if batch_ms > 0.0 {
            obs.gauge(&format!("bench.batch.t{threads}.speedup"), batch_ms_1 / batch_ms);
        }
        println!(
            "threads={threads}: train {train_ms:>8.1} ms ({:>4.2}x), \
             batch {batch_ms:>8.1} ms ({:>4.2}x), {ok}/{} summaries ok",
            train_ms_1 / train_ms,
            batch_ms_1 / batch_ms,
            trips.len(),
        );
    }
    println!("model JSON byte-identical across all thread counts ✓ (host CPUs: {host_cpus})");

    // One traced 4-thread training run so the report carries the executor's
    // spans/counters (train.shard, exec.threads, exec.tasks_stolen), not
    // just the scalar gauges above.
    let summarizer = h.train_summarizer(
        standard_features(),
        FeatureWeights::uniform(&standard_features()),
        SummarizerConfig::default().with_threads(4).with_recorder(obs.clone()),
    );
    let _ = summarizer.summarize_batch(&trips[..trips.len().min(50)]);

    let report = obs.report();
    println!("\n{}", stmaker_obs::stats::render(&report));
    // cargo runs benches with cwd = the package root; default to the
    // workspace root so the committed report is what gets refreshed.
    let path = std::env::var("STMAKER_OBS_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parallel.json").to_owned()
    });
    match report.write_json(&path) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("warning: cannot write {path}: {e}"),
    }
}
