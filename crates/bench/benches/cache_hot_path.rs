//! Route-cache hot-path benchmark: cold vs. warm throughput of the
//! serving path (`Summarizer::summarize_prepared`) on a repeated-pair
//! workload, plus the byte-identity guarantee the cache is sold on.
//!
//! The workload models the commuter-corridor access pattern that
//! motivates the cache (DESIGN.md §12): a fixed set of test trips whose
//! landmark pairs repeat across requests. The **cold** pass runs every
//! trip once against an empty cache; **warm** passes re-run the same
//! trips with the cache populated. Calibration and feature extraction
//! happen once up front (`Summarizer::prepare`) — they are per-trip
//! input processing, not the repeated query path the cache accelerates.
//!
//! Asserted here (and mirrored by the `end_to_end` test
//! `summaries_identical_with_and_without_cache`):
//!
//! * summaries with the cache are byte-identical to summaries without
//!   it, at 1/2/4 worker threads;
//! * the warm hit rate is ≥ 0.9 (every route query after the cold pass
//!   is a hit, modulo capacity evictions);
//! * warm passes are ≥ 2× faster than the cold pass (full scale only;
//!   `STMAKER_BENCH_SMOKE=1` shrinks the corpus for CI and skips the
//!   timing assertion, which would be noise on a shared runner).
//!
//! Results land — as gauges in the shared `stmaker-obs` report schema —
//! in `BENCH_cache.json` (override with `STMAKER_OBS_OUT`);
//! `cargo xtask obs-schema BENCH_cache.json` validates them. Like the
//! other report-producing benches this is a plain `harness = false`
//! binary: the deliverable is the report file, not a Criterion estimate.

use std::time::Instant;

use stmaker::{standard_features, FeatureWeights, Prepared, Summarizer, SummarizerConfig};
use stmaker_eval::{ExperimentScale, Harness};
use stmaker_obs::Recorder;

/// Route slots in the serving cache — comfortably above the distinct
/// pair count of the quick-scale corpus, so the warm passes measure
/// hits rather than eviction churn.
const CACHE_CAPACITY: usize = 512;

/// Thread counts the byte-identity sweep covers.
const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

fn main() {
    let smoke = std::env::var("STMAKER_BENCH_SMOKE").is_ok();
    let mut scale = ExperimentScale::quick();
    if smoke {
        scale.n_train = 120;
        scale.n_test = 60;
    } else {
        scale.n_test = 200;
    }
    let warm_passes: usize = if smoke { 2 } else { 8 };

    let h = Harness::new(scale);
    let trips: Vec<_> = h.test.iter().map(|t| t.raw.clone()).collect();

    let obs = Recorder::enabled();
    let host_cpus =
        std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1);
    obs.gauge("bench.host_cpus", host_cpus as f64); // cast-ok: CPU count
    obs.gauge("bench.cache.capacity", CACHE_CAPACITY as f64); // cast-ok: entry count
    obs.gauge("bench.cache.corpus", trips.len() as f64); // cast-ok: corpus size
    obs.gauge("bench.cache.warm_passes", warm_passes as f64); // cast-ok: pass count

    // ── Cold vs. warm on the serving path ────────────────────────────
    let features = standard_features();
    let weights = FeatureWeights::uniform(&features);
    let cfg = SummarizerConfig::default().with_threads(1).with_route_cache(CACHE_CAPACITY);
    let summarizer = h.train_summarizer(features, weights, cfg);

    let prepared: Vec<Prepared> = trips.iter().filter_map(|t| summarizer.prepare(t).ok()).collect();
    assert!(!prepared.is_empty(), "quick-scale corpus must yield preparable trips");

    let serve_pass = |summarizer: &Summarizer<'_>| -> (f64, usize) {
        // lint: wallclock — benchmark harness: wall time is the measured quantity by design
        let t0 = Instant::now();
        let ok = prepared.iter().filter(|p| summarizer.summarize_prepared(p, None).is_ok()).count();
        (t0.elapsed().as_secs_f64() * 1e3, ok)
    };

    let (cold_ms, cold_ok) = serve_pass(&summarizer);
    let warm_stats_before = summarizer.route_cache_stats();
    let mut warm_total_ms = 0.0;
    for _ in 0..warm_passes {
        let (ms, ok) = serve_pass(&summarizer);
        assert_eq!(ok, cold_ok, "warm passes must summarize the same trips");
        warm_total_ms += ms;
    }
    let warm_ms = warm_total_ms / warm_passes as f64; // cast-ok: pass count
    let speedup = if warm_ms > 0.0 { cold_ms / warm_ms } else { 1.0 };

    let stats = summarizer.route_cache_stats().unwrap_or_default();
    let warm_stats = match &warm_stats_before {
        Some(before) => stats.since(before),
        None => stats,
    };
    obs.gauge("bench.serve.cold.ms", cold_ms);
    obs.gauge("bench.serve.warm.ms", warm_ms);
    obs.gauge("bench.serve.speedup", speedup);
    obs.gauge("bench.cache.hit_rate", stats.hit_rate());
    obs.gauge("bench.cache.warm_hit_rate", warm_stats.hit_rate());
    stats.record_into(&obs, "cache");
    println!(
        "serving path over {} prepared trips: cold {cold_ms:.1} ms, \
         warm {warm_ms:.1} ms/pass ({speedup:.2}x), warm hit rate {:.3}",
        prepared.len(),
        warm_stats.hit_rate(),
    );

    assert!(warm_stats.hit_rate() > 0.0, "warm passes over a repeated workload must hit the cache");
    if !smoke {
        assert!(
            warm_stats.hit_rate() >= 0.9,
            "warm hit rate {:.3} below the 0.9 bar",
            warm_stats.hit_rate()
        );
        assert!(speedup >= 2.0, "warm speedup {speedup:.2}x below the 2x bar");
    }

    // ── Byte-identity: cache on vs. off, threads 1/2/4 ───────────────
    // The cache memoizes pure functions of the trained model, so the
    // rendered summaries must match byte for byte regardless of thread
    // count or cache state (including evictions: a deliberately tiny
    // cache below churns constantly and must still agree).
    let reference: Vec<Option<String>> = {
        let s = h.train_summarizer(
            standard_features(),
            FeatureWeights::uniform(&standard_features()),
            SummarizerConfig::default().with_threads(1),
        );
        s.summarize_batch(&trips).into_iter().map(|r| r.ok().map(|s| s.text)).collect()
    };
    for threads in THREAD_COUNTS {
        for capacity in [CACHE_CAPACITY, 4] {
            let s = h.train_summarizer(
                standard_features(),
                FeatureWeights::uniform(&standard_features()),
                SummarizerConfig::default().with_threads(threads).with_route_cache(capacity),
            );
            let got: Vec<Option<String>> =
                s.summarize_batch(&trips).into_iter().map(|r| r.ok().map(|s| s.text)).collect();
            assert_eq!(
                got, reference,
                "summaries with a {capacity}-route cache at {threads} thread(s) \
                 must be byte-identical to the uncached single-thread run"
            );
        }
        obs.gauge(&format!("bench.identity.t{threads}"), 1.0);
    }
    println!(
        "byte-identity: cached (cap {CACHE_CAPACITY} and cap 4) == uncached \
         at {THREAD_COUNTS:?} threads ✓"
    );

    let report = obs.report();
    println!("\n{}", stmaker_obs::stats::render(&report));
    // cargo runs benches with cwd = the package root; default to the
    // workspace root so the committed report is what gets refreshed.
    let path = std::env::var("STMAKER_OBS_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_cache.json").to_owned()
    });
    match report.write_json(&path) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("warning: cannot write {path}: {e}"),
    }
}
