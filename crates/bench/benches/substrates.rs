//! Substrate micro-benchmarks: the building blocks every experiment leans
//! on. Useful for regression tracking and for sizing the full-scale runs.
//!
//! * `substrate/dbscan_2k` — clustering 2000 POIs into landmarks (Sec. VII-A);
//! * `substrate/hits` — significance power iteration over a 10k-visit graph;
//! * `substrate/dijkstra` — fastest-path search across the default city;
//! * `substrate/popular_route` — PR(lᵢ, lⱼ) queries against a mined corpus;
//! * `substrate/edit_distance` — the Sec. V-A sequence measure;
//! * `substrate/stay_uturn` — moving-feature detection over a long trip.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;
use stmaker::irregular::feature_edit_distance;
use stmaker::FeatureScale;
use stmaker_eval::{ExperimentScale, Harness};
use stmaker_generator::{TripConfig, TripGenerator, World, WorldConfig};
use stmaker_poi::{dbscan, DbscanParams};
use stmaker_road::{build_city, PathCost, SynthCityConfig};
use stmaker_routes::{PopularRouteConfig, PopularRoutes};
use stmaker_significance::{compute_significance, HitsConfig, Visit};
use stmaker_trajectory::{detect_stay_points, detect_u_turns, StayPointParams, UTurnParams};

fn substrates(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate");
    group.sample_size(20);

    // DBSCAN over 2000 synthetic POI locations.
    let mut rng = StdRng::seed_from_u64(1);
    let base = stmaker_geo::GeoPoint::new(39.9, 116.4);
    let pois: Vec<_> = (0..2000)
        .map(|_| base.destination(rng.random_range(0.0..360.0), rng.random_range(0.0..6_000.0)))
        .collect();
    group.bench_function("dbscan_2k", |b| {
        b.iter(|| black_box(dbscan(black_box(&pois), DbscanParams::default())))
    });

    // HITS over 10k visits, 500 users, 300 landmarks.
    let visits: Vec<Visit> =
        (0..10_000).map(|i| Visit::new((i * 7) % 500, (i * i) % 300)).collect();
    group.bench_function("hits_10k_visits", |b| {
        b.iter(|| black_box(compute_significance(300, black_box(&visits), HitsConfig::default())))
    });

    // Dijkstra across the default 16×16 city.
    let net = build_city(&SynthCityConfig::default());
    let n = net.node_count() as u32;
    group.bench_function("dijkstra_city", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(37);
            let src = stmaker_road::NodeId(i % n);
            let dst = stmaker_road::NodeId((i * 13 + 101) % n);
            black_box(stmaker_road::pathfind::shortest_path(&net, src, dst, PathCost::TravelTime))
        });
    });

    // Popular-route queries against a mined 150-trip corpus.
    let world = World::generate(WorldConfig::small(3));
    let gen = TripGenerator::new(&world, TripConfig::default());
    let corpus = gen.generate_corpus(150, 5);
    let symbolics: Vec<_> = corpus
        .iter()
        .filter_map(|t| {
            stmaker_calibration::calibrate_opt(
                &t.raw,
                &world.registry,
                stmaker_calibration::CalibrationParams::default(),
            )
        })
        .collect();
    let pr = PopularRoutes::build(&symbolics, PopularRouteConfig::default());
    let endpoints: Vec<_> = symbolics
        .iter()
        .map(|s| (s.points()[0].landmark, s.points().last().unwrap().landmark))
        .collect();
    group.bench_function("popular_route_query", |b| {
        let mut i = 0;
        b.iter(|| {
            let (from, to) = endpoints[i % endpoints.len()];
            i += 1;
            black_box(pr.popular_route(black_box(from), black_box(to)))
        });
    });

    // Edit distance over 32-element sequences.
    let a: Vec<f64> = (0..32).map(|i| (i % 7) as f64).collect();
    let bseq: Vec<f64> = (0..32).map(|i| ((i * 3) % 7) as f64).collect();
    group.bench_function("edit_distance_32", |b| {
        b.iter(|| {
            black_box(feature_edit_distance(
                black_box(&a),
                black_box(&bseq),
                FeatureScale::Categorical,
            ))
        })
    });

    // Stay-point + U-turn detection over one long rush-hour trip.
    let h = Harness::new({
        let mut s = ExperimentScale::quick();
        s.n_train = 1;
        s.n_test = 1;
        s
    });
    let mut rng2 = StdRng::seed_from_u64(9);
    let g2 = h.generator();
    let trip = (0..50).find_map(|_| g2.generate_at(0, 8.0, &mut rng2)).expect("rush trip");
    group.bench_function("stay_uturn_detection", |b| {
        b.iter(|| {
            let s = detect_stay_points(black_box(&trip.raw), StayPointParams::default());
            let u = detect_u_turns(black_box(&trip.raw), UTurnParams::default());
            black_box((s, u))
        })
    });

    group.finish();
}

criterion_group!(benches, substrates);
criterion_main!(benches);
