//! Fig. 12 — the paper's timing experiment as Criterion benchmarks.
//!
//! * `fig12a_time_vs_len/|T|≈N` — mean end-to-end summarization time for
//!   trajectories whose symbolic size falls in the bucket around `N`
//!   (paper Fig. 12(a): tens of milliseconds, mild growth with |T|).
//! * `fig12b_time_vs_k/k=N` — mean time for `summarize_k` at each requested
//!   partition count (paper Fig. 12(b): near-flat in k).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use stmaker::{standard_features, FeatureWeights, Summarizer, SummarizerConfig};
use stmaker_eval::{ExperimentScale, Harness};
use stmaker_trajectory::RawTrajectory;

struct Setup {
    harness: Harness,
}

impl Setup {
    fn new() -> Self {
        let mut scale = ExperimentScale::quick();
        scale.n_train = 150;
        scale.n_test = 250;
        Self { harness: Harness::new(scale) }
    }

    fn summarizer(&self) -> Summarizer<'_> {
        let features = standard_features();
        let weights = FeatureWeights::uniform(&features);
        self.harness.train_summarizer(features, weights, SummarizerConfig::default())
    }
}

fn fig12a(c: &mut Criterion) {
    let setup = Setup::new();
    let summarizer = setup.summarizer();
    // Bucket test trips by symbolic size.
    let mut buckets: std::collections::BTreeMap<usize, Vec<RawTrajectory>> = Default::default();
    for trip in &setup.harness.test {
        if let Ok(p) = summarizer.prepare(&trip.raw) {
            let centre = ((p.symbolic.size() + 2) / 5) * 5; // nearest 5
            buckets.entry(centre).or_default().push(trip.raw.clone());
        }
    }
    let mut group = c.benchmark_group("fig12a_time_vs_len");
    group.sample_size(20);
    for (centre, trips) in buckets.iter().filter(|(_, v)| v.len() >= 5) {
        group.bench_with_input(
            BenchmarkId::new("summarize", format!("T{centre}")),
            trips,
            |b, trips| {
                let mut i = 0;
                b.iter(|| {
                    let raw = &trips[i % trips.len()];
                    i += 1;
                    black_box(summarizer.summarize(black_box(raw)).ok())
                });
            },
        );
    }
    group.finish();
}

fn fig12b(c: &mut Criterion) {
    let setup = Setup::new();
    let summarizer = setup.summarizer();
    let trips: Vec<RawTrajectory> =
        setup.harness.test.iter().take(60).map(|t| t.raw.clone()).collect();
    let mut group = c.benchmark_group("fig12b_time_vs_k");
    group.sample_size(20);
    for k in 1..=7usize {
        group.bench_with_input(BenchmarkId::new("summarize_k", k), &k, |b, &k| {
            let mut i = 0;
            b.iter(|| {
                let raw = &trips[i % trips.len()];
                i += 1;
                black_box(summarizer.summarize_k(black_box(raw), k).ok())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, fig12a, fig12b);
criterion_main!(benches);
