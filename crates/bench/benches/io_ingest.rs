//! Columnar-IO benchmark: STC1 binary containers vs. the CSV and JSONL
//! text formats, on the two paths the format exists for (DESIGN.md §16):
//!
//! * **ingest** — parsing a trip corpus back into `RawTrajectory`s, the
//!   per-request cost of `summarize_batch` bodies and the startup cost of
//!   `train --dir`;
//! * **model load** — deserializing a `TrainedModel`, the cost a serving
//!   process pays at boot and on every `POST /model` hot-swap.
//!
//! Asserted here (and mirrored by the `end_to_end` test
//! `stc_model_round_trip_is_byte_identical_across_thread_counts`):
//!
//! * STC-decoded trips and models are **exactly** equal to what the text
//!   paths produce — same f64 bits, same timestamps, same canonical model
//!   JSON;
//! * at full scale, STC ingest is ≥ 5× faster than CSV parse and STC
//!   model load is ≥ 10× faster than JSON model load
//!   (`STMAKER_BENCH_SMOKE=1` shrinks the corpus for CI and skips the
//!   timing assertions, which would be noise on a shared runner).
//!
//! Results land — as `bench.io.*` gauges plus the `io.*` work counters in
//! the shared `stmaker-obs` report schema — in `BENCH_io.json` (override
//! with `STMAKER_OBS_OUT`); `cargo xtask obs-schema BENCH_io.json`
//! validates them. Like the other report-producing benches this is a plain
//! `harness = false` binary: the deliverable is the report file, not a
//! Criterion estimate.

use std::time::Instant;

use stmaker::{standard_features, FeatureWeights, Summarizer, SummarizerConfig, TrainedModel};
use stmaker_eval::{ExperimentScale, Harness};
use stmaker_io::{
    read_model_stc, read_trajectory_csv, read_trajectory_jsonl, read_trips_stc, write_model_stc,
    write_trajectory_csv, write_trajectory_jsonl, write_trips_stc,
};
use stmaker_trajectory::RawTrajectory;

fn main() {
    let smoke = std::env::var("STMAKER_BENCH_SMOKE").is_ok();
    let scale = if smoke {
        let mut s = ExperimentScale::quick();
        s.n_train = 120;
        s.n_test = 60;
        s
    } else {
        ExperimentScale::full()
    };
    let passes: usize = if smoke { 2 } else { 7 };

    let h = Harness::new(scale);
    // The ingest corpus is everything the harness generated: the training
    // trips plus the test trips, the same trajectories the other benches
    // push through the pipeline.
    let mut trips: Vec<RawTrajectory> = h.train_raw();
    trips.extend(h.test.iter().map(|t| t.raw.clone()));
    let n_points: usize = trips.iter().map(RawTrajectory::len).sum();

    let obs = stmaker_obs::Recorder::enabled();
    let host_cpus =
        std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1);
    obs.gauge("bench.host_cpus", host_cpus as f64); // cast-ok: CPU count
    obs.gauge("bench.io.trips", trips.len() as f64); // cast-ok: corpus size
    obs.gauge("bench.io.points", n_points as f64); // cast-ok: corpus size
    obs.gauge("bench.io.passes", passes as f64); // cast-ok: pass count

    // ── Encode once, in all three formats ────────────────────────────
    let csv_docs: Vec<String> = trips.iter().map(write_trajectory_csv).collect();
    let jsonl_docs: Vec<String> = trips.iter().map(write_trajectory_jsonl).collect();
    let stc_bytes = write_trips_stc(&trips);
    let csv_total: usize = csv_docs.iter().map(String::len).sum();
    let jsonl_total: usize = jsonl_docs.iter().map(String::len).sum();
    obs.gauge("bench.io.ingest.csv_bytes", csv_total as f64); // cast-ok: byte size
    obs.gauge("bench.io.ingest.jsonl_bytes", jsonl_total as f64); // cast-ok: byte size
    obs.gauge("bench.io.ingest.stc_bytes", stc_bytes.len() as f64); // cast-ok: byte size

    // The decoded container must be exactly the input — f64 bits and
    // timestamps included — or the speedup would be measuring a different
    // (lossier) job than the text parsers do.
    let decoded = read_trips_stc(&stc_bytes).expect("own encoding decodes");
    assert_eq!(decoded, trips, "STC round-trip must be exact");
    drop(decoded);

    // ── Ingest: parse-everything passes, interleaved, min-scored ─────
    // Interleaving format by format pass by pass and keeping each format's
    // minimum is the noise-robust estimator on a shared runner, where one
    // background hiccup can double any single pass.
    let parse_csv = || -> usize {
        csv_docs.iter().map(|d| read_trajectory_csv(d).expect("fixture parses").len()).sum()
    };
    let parse_jsonl = || -> usize {
        jsonl_docs.iter().map(|d| read_trajectory_jsonl(d).expect("fixture parses").len()).sum()
    };
    let parse_stc = || -> usize {
        read_trips_stc(&stc_bytes).expect("fixture decodes").iter().map(RawTrajectory::len).sum()
    };
    let (mut csv_ms, mut jsonl_ms, mut stc_ms) = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for _ in 0..passes {
        // lint: wallclock — benchmark harness: wall time is the measured quantity by design
        let t0 = Instant::now();
        assert_eq!(parse_csv(), n_points);
        csv_ms = csv_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        // lint: wallclock — benchmark harness: wall time is the measured quantity by design
        let t1 = Instant::now();
        assert_eq!(parse_jsonl(), n_points);
        jsonl_ms = jsonl_ms.min(t1.elapsed().as_secs_f64() * 1e3);
        // lint: wallclock — benchmark harness: wall time is the measured quantity by design
        let t2 = Instant::now();
        assert_eq!(parse_stc(), n_points);
        stc_ms = stc_ms.min(t2.elapsed().as_secs_f64() * 1e3);
    }
    let speedup_csv = if stc_ms > 0.0 { csv_ms / stc_ms } else { 1.0 };
    let speedup_jsonl = if stc_ms > 0.0 { jsonl_ms / stc_ms } else { 1.0 };
    obs.gauge("bench.io.ingest.csv_ms", csv_ms);
    obs.gauge("bench.io.ingest.jsonl_ms", jsonl_ms);
    obs.gauge("bench.io.ingest.stc_ms", stc_ms);
    obs.gauge("bench.io.ingest.speedup_csv", speedup_csv);
    obs.gauge("bench.io.ingest.speedup_jsonl", speedup_jsonl);
    println!(
        "ingest {} trips / {} points: csv {csv_ms:.1} ms, jsonl {jsonl_ms:.1} ms, \
         stc {stc_ms:.1} ms ({speedup_csv:.1}x vs csv, {speedup_jsonl:.1}x vs jsonl)",
        trips.len(),
        n_points,
    );

    // The io.* work counters the CLI's `convert` emits, so
    // `obs-schema --require-counters io.*` holds on this report too. One
    // read of each encoding plus the one STC write above.
    obs.add("io.trips_read", 3 * trips.len() as u64);
    obs.add("io.points_read", 3 * n_points as u64);
    obs.add("io.bytes_read", (csv_total + jsonl_total + stc_bytes.len()) as u64);
    obs.add("io.trips_written", trips.len() as u64);
    obs.add("io.points_written", n_points as u64);
    obs.add("io.bytes_written", stc_bytes.len() as u64);

    // ── Model save/load: canonical JSON vs. STC1 ─────────────────────
    let raws = h.train_raw();
    let features = standard_features();
    let weights = FeatureWeights::uniform(&features);
    let model = Summarizer::train(
        &h.world.net,
        &h.world.registry,
        &raws,
        features,
        weights,
        SummarizerConfig::default(),
    )
    .into_model();

    let model_json = model.to_json();
    let model_stc = write_model_stc(&model);
    obs.gauge("bench.io.model.json_bytes", model_json.len() as f64); // cast-ok: byte size
    obs.gauge("bench.io.model.stc_bytes", model_stc.len() as f64); // cast-ok: byte size
    let revived = read_model_stc(&model_stc).expect("own encoding decodes");
    assert_eq!(revived.to_json(), model_json, "STC model round-trip must be JSON-canonical");
    drop(revived);

    let (mut json_save_ms, mut stc_save_ms) = (f64::INFINITY, f64::INFINITY);
    let (mut json_load_ms, mut stc_load_ms) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..passes {
        // lint: wallclock — benchmark harness: wall time is the measured quantity by design
        let t0 = Instant::now();
        assert_eq!(model.to_json().len(), model_json.len());
        json_save_ms = json_save_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        // lint: wallclock — benchmark harness: wall time is the measured quantity by design
        let t1 = Instant::now();
        assert_eq!(write_model_stc(&model).len(), model_stc.len());
        stc_save_ms = stc_save_ms.min(t1.elapsed().as_secs_f64() * 1e3);
        // lint: wallclock — benchmark harness: wall time is the measured quantity by design
        let t2 = Instant::now();
        let m = TrainedModel::from_json(&model_json).expect("canonical JSON parses");
        json_load_ms = json_load_ms.min(t2.elapsed().as_secs_f64() * 1e3);
        assert_eq!(m.n_trained, model.n_trained);
        // lint: wallclock — benchmark harness: wall time is the measured quantity by design
        let t3 = Instant::now();
        let m = read_model_stc(&model_stc).expect("own encoding decodes");
        stc_load_ms = stc_load_ms.min(t3.elapsed().as_secs_f64() * 1e3);
        assert_eq!(m.n_trained, model.n_trained);
    }
    let load_speedup = if stc_load_ms > 0.0 { json_load_ms / stc_load_ms } else { 1.0 };
    let save_speedup = if stc_save_ms > 0.0 { json_save_ms / stc_save_ms } else { 1.0 };
    obs.gauge("bench.io.model.json_save_ms", json_save_ms);
    obs.gauge("bench.io.model.stc_save_ms", stc_save_ms);
    obs.gauge("bench.io.model.json_load_ms", json_load_ms);
    obs.gauge("bench.io.model.stc_load_ms", stc_load_ms);
    obs.gauge("bench.io.model.load_speedup", load_speedup);
    obs.gauge("bench.io.model.save_speedup", save_speedup);
    println!(
        "model ({} KiB json / {} KiB stc): save json {json_save_ms:.2} ms vs stc \
         {stc_save_ms:.2} ms ({save_speedup:.1}x); load json {json_load_ms:.2} ms vs stc \
         {stc_load_ms:.2} ms ({load_speedup:.1}x)",
        model_json.len() / 1024,
        model_stc.len() / 1024,
    );

    if !smoke {
        assert!(
            speedup_csv >= 5.0,
            "STC ingest speedup over CSV {speedup_csv:.2}x below the 5x bar"
        );
        assert!(
            load_speedup >= 10.0,
            "STC model-load speedup over JSON {load_speedup:.2}x below the 10x bar"
        );
    }

    let report = obs.report();
    println!("\n{}", stmaker_obs::stats::render(&report));
    // cargo runs benches with cwd = the package root; default to the
    // workspace root so the committed report is what gets refreshed.
    let path = std::env::var("STMAKER_OBS_OUT")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_io.json").to_owned());
    match report.write_json(&path) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("warning: cannot write {path}: {e}"),
    }
}
