//! An inverted index with tf-idf ranked search over a summary corpus.

use crate::vectorize::{tokenize, SparseVector, TfIdfModel};
use std::collections::HashMap;

/// Inverted index: term → postings, plus precomputed document vectors for
/// ranking. Document ids are the insertion order of the corpus.
pub struct InvertedIndex {
    model: TfIdfModel,
    postings: HashMap<usize, Vec<usize>>,
    doc_vectors: Vec<SparseVector>,
}

impl InvertedIndex {
    /// Builds the index over a corpus of summary texts.
    pub fn build<S: AsRef<str>>(docs: &[S]) -> Self {
        let model = TfIdfModel::fit(docs);
        let mut postings: HashMap<usize, Vec<usize>> = HashMap::new();
        let mut doc_vectors = Vec::with_capacity(docs.len());
        for (doc_id, doc) in docs.iter().enumerate() {
            let v = model.transform(doc.as_ref());
            for (term, _) in v.entries() {
                postings.entry(*term).or_default().push(doc_id);
            }
            doc_vectors.push(v);
        }
        Self { model, postings, doc_vectors }
    }

    /// Number of indexed documents.
    pub fn len(&self) -> usize {
        self.doc_vectors.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.doc_vectors.is_empty()
    }

    /// The fitted vectorizer (exposed for clustering over the same space).
    pub fn model(&self) -> &TfIdfModel {
        &self.model
    }

    /// The precomputed document vectors.
    pub fn doc_vectors(&self) -> &[SparseVector] {
        &self.doc_vectors
    }

    /// Documents containing `term` (exact token match).
    pub fn docs_with_term(&self, term: &str) -> &[usize] {
        self.model
            .term_id(term)
            .and_then(|id| self.postings.get(&id))
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Ranked search: returns up to `k` `(doc_id, score)` pairs by tf-idf
    /// cosine similarity, best first. Candidate set is the union of the
    /// query terms' postings, so cost scales with matching docs, not corpus
    /// size.
    pub fn search(&self, query: &str, k: usize) -> Vec<(usize, f64)> {
        let qv = self.model.transform(query);
        if qv.is_zero() || k == 0 {
            return Vec::new();
        }
        let mut candidates: Vec<usize> = qv
            .entries()
            .iter()
            .filter_map(|(t, _)| self.postings.get(t))
            .flatten()
            .copied()
            .collect();
        candidates.sort_unstable();
        candidates.dedup();
        let mut scored: Vec<(usize, f64)> = candidates
            .into_iter()
            .map(|d| (d, qv.cosine(&self.doc_vectors[d])))
            .filter(|(_, s)| *s > 0.0)
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        scored.truncate(k);
        scored
    }

    /// All tokens of the query must appear in the document (boolean AND),
    /// ranked by cosine. The "semantic queries on trajectory summarization"
    /// future-work item of Sec. IX, in its simplest useful form.
    pub fn search_all_terms(&self, query: &str, k: usize) -> Vec<(usize, f64)> {
        let terms: Vec<usize> =
            tokenize(query).iter().filter_map(|t| self.model.term_id(t)).collect();
        if terms.is_empty() || terms.len() < tokenize(query).len() {
            return Vec::new(); // some term is out-of-vocabulary: no doc has all
        }
        let mut result: Option<Vec<usize>> = None;
        for t in &terms {
            let posting = self.postings.get(t).cloned().unwrap_or_default();
            result = Some(match result {
                None => posting,
                Some(cur) => intersect_sorted(&cur, &posting),
            });
            if result.as_ref().map(|r| r.is_empty()).unwrap_or(false) {
                return Vec::new();
            }
        }
        let qv = self.model.transform(query);
        let mut scored: Vec<(usize, f64)> = result
            .unwrap_or_default()
            .into_iter()
            .map(|d| (d, qv.cosine(&self.doc_vectors[d])))
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        scored.truncate(k);
        scored
    }
}

fn intersect_sorted(a: &[usize], b: &[usize]) -> Vec<usize> {
    let (mut i, mut j) = (0, 0);
    let mut out = Vec::new();
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<&'static str> {
        vec![
            "The car started from the North Station to the Mall smoothly.",
            "The car started from the Mall to the Hospital with 2 staying points.",
            "The car started from the Park to the Station with conducting one U-turn at Ring Road.",
            "Then it moved from the Hospital to the Park with the speed of 30 km/h which was 20 km/h slower.",
        ]
    }

    #[test]
    fn term_postings() {
        let idx = InvertedIndex::build(&corpus());
        assert_eq!(idx.len(), 4);
        assert_eq!(idx.docs_with_term("mall"), &[0, 1]);
        assert_eq!(idx.docs_with_term("u-turn"), &[2]);
        assert!(idx.docs_with_term("nonexistent").is_empty());
    }

    #[test]
    fn ranked_search_finds_best_doc_first() {
        let idx = InvertedIndex::build(&corpus());
        let hits = idx.search("staying points at the mall", 10);
        assert!(!hits.is_empty());
        assert_eq!(hits[0].0, 1, "doc 1 matches both 'staying' and 'mall'");
        // Scores are descending.
        assert!(hits.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn search_respects_k_and_empty_query() {
        let idx = InvertedIndex::build(&corpus());
        assert!(idx.search("zzz unknown zzz", 5).is_empty());
        assert!(idx.search("station", 0).is_empty());
        assert_eq!(idx.search("station", 1).len(), 1);
    }

    #[test]
    fn boolean_and_search() {
        let idx = InvertedIndex::build(&corpus());
        let hits = idx.search_all_terms("station u-turn", 10);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, 2);
        // A query with an out-of-vocabulary term matches nothing.
        assert!(idx.search_all_terms("station warpdrive", 10).is_empty());
        // Terms in different docs only: empty intersection.
        assert!(idx.search_all_terms("u-turn staying", 10).is_empty());
    }

    #[test]
    fn empty_corpus() {
        let idx = InvertedIndex::build::<&str>(&[]);
        assert!(idx.is_empty());
        assert!(idx.search("anything", 5).is_empty());
    }
}
