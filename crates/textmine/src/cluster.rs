//! Seeded spherical k-means over tf-idf vectors.
//!
//! The paper's Sec. VI-C use case: cluster the summaries of a region/time
//! window to get "a quick overview about the traffic condition". Spherical
//! (cosine) k-means is the standard choice for tf-idf document vectors.

use crate::vectorize::SparseVector;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Cluster id per document (`k` = number of clusters actually used).
    pub assignments: Vec<usize>,
    /// Dense unit-length centroids, `centroids[c][term_id]`.
    pub centroids: Vec<Vec<f64>>,
    /// Iterations run until convergence (or the cap).
    pub iterations: usize,
}

impl KMeansResult {
    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// The `n` highest-weight term ids of cluster `c` — the cluster's topic.
    pub fn top_terms(&self, c: usize, n: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.centroids[c].len()).collect();
        idx.sort_by(|a, b| self.centroids[c][*b].total_cmp(&self.centroids[c][*a]).then(a.cmp(b)));
        idx.truncate(n);
        idx.retain(|i| self.centroids[c][*i] > 0.0);
        idx
    }

    /// Documents in cluster `c`.
    pub fn members(&self, c: usize) -> Vec<usize> {
        self.assignments.iter().enumerate().filter(|(_, a)| **a == c).map(|(i, _)| i).collect()
    }
}

/// Spherical k-means with k-means++-style seeding from a deterministic RNG.
///
/// `dim` is the vocabulary size. Zero vectors are assigned to cluster 0 and
/// ignored during centroid updates. `k` is clamped to the number of non-zero
/// documents.
pub fn kmeans_cosine(
    vectors: &[SparseVector],
    dim: usize,
    k: usize,
    max_iters: usize,
    seed: u64,
) -> KMeansResult {
    let nonzero: Vec<usize> = (0..vectors.len()).filter(|i| !vectors[*i].is_zero()).collect();
    let k = k.clamp(1, nonzero.len().max(1));
    if nonzero.is_empty() || dim == 0 {
        return KMeansResult {
            assignments: vec![0; vectors.len()],
            centroids: vec![vec![0.0; dim]; 1],
            iterations: 0,
        };
    }

    let mut rng = StdRng::seed_from_u64(seed);

    // k-means++ seeding: first centre uniform, later centres ∝ (1 − sim)².
    let mut centres: Vec<Vec<f64>> = Vec::with_capacity(k);
    let first = nonzero[rng.random_range(0..nonzero.len())];
    centres.push(densify(&vectors[first], dim));
    while centres.len() < k {
        let weights: Vec<f64> = nonzero
            .iter()
            .map(|i| {
                let best = centres
                    .iter()
                    .map(|c| dot_sparse_dense(&vectors[*i], c))
                    .fold(f64::NEG_INFINITY, f64::max);
                (1.0 - best).max(0.0).powi(2) + 1e-9
            })
            .collect();
        let total: f64 = weights.iter().sum();
        let mut x = rng.random_range(0.0..total);
        let mut chosen = nonzero[nonzero.len() - 1];
        for (i, w) in nonzero.iter().zip(&weights) {
            if x < *w {
                chosen = *i;
                break;
            }
            x -= w;
        }
        centres.push(densify(&vectors[chosen], dim));
    }

    let mut assignments = vec![0usize; vectors.len()];
    let mut iterations = 0;
    for it in 0..max_iters {
        iterations = it + 1;
        // Assign.
        let mut changed = false;
        for &i in &nonzero {
            let (mut best_c, mut best_s) = (0usize, f64::NEG_INFINITY);
            for (c, centre) in centres.iter().enumerate() {
                let s = dot_sparse_dense(&vectors[i], centre);
                if s > best_s {
                    best_s = s;
                    best_c = c;
                }
            }
            if assignments[i] != best_c {
                assignments[i] = best_c;
                changed = true;
            }
        }
        if !changed && it > 0 {
            break;
        }
        // Update.
        let mut sums: Vec<Vec<f64>> = vec![vec![0.0; dim]; k];
        let mut counts = vec![0usize; k];
        for &i in &nonzero {
            let c = assignments[i];
            counts[c] += 1;
            for (t, w) in vectors[i].entries() {
                sums[c][*t] += w;
            }
        }
        for (c, sum) in sums.iter_mut().enumerate() {
            if counts[c] == 0 {
                // Empty cluster: reseed at the document farthest from its
                // centre (deterministic, keeps k clusters alive).
                let far = nonzero
                    .iter()
                    .min_by(|a, b| {
                        let sa = dot_sparse_dense(&vectors[**a], &centres[assignments[**a]]);
                        let sb = dot_sparse_dense(&vectors[**b], &centres[assignments[**b]]);
                        sa.total_cmp(&sb).then(a.cmp(b))
                    })
                    .copied()
                    .unwrap_or(nonzero[0]);
                *sum = densify(&vectors[far], dim);
                continue;
            }
            let norm = sum.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm > 0.0 {
                for x in sum.iter_mut() {
                    *x /= norm;
                }
            }
        }
        centres = sums;
    }

    KMeansResult { assignments, centroids: centres, iterations }
}

fn densify(v: &SparseVector, dim: usize) -> Vec<f64> {
    let mut out = vec![0.0; dim];
    for (t, w) in v.entries() {
        out[*t] = *w;
    }
    out
}

fn dot_sparse_dense(v: &SparseVector, dense: &[f64]) -> f64 {
    v.entries().iter().map(|(t, w)| w * dense[*t]).sum()
}

/// Convenience: cluster raw texts directly; returns the k-means result and
/// human-readable top terms per cluster.
pub fn cluster_texts<S: AsRef<str>>(
    docs: &[S],
    k: usize,
    seed: u64,
) -> (KMeansResult, Vec<Vec<String>>) {
    let model = crate::vectorize::TfIdfModel::fit(docs);
    let vectors: Vec<SparseVector> = docs.iter().map(|d| model.transform(d.as_ref())).collect();
    let result = kmeans_cosine(&vectors, model.vocab_len(), k, 50, seed);
    let terms = (0..result.k())
        .map(|c| result.top_terms(c, 5).into_iter().map(|t| model.term(t).to_owned()).collect())
        .collect();
    (result, terms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vectorize::TfIdfModel;

    fn two_topic_corpus() -> Vec<String> {
        let mut docs = Vec::new();
        for i in 0..10 {
            docs.push(format!("staying points congestion jam slow traffic {i}"));
        }
        for i in 0..10 {
            docs.push(format!("u-turn detour wrong direction reversal {i}"));
        }
        docs
    }

    fn fit(docs: &[String]) -> (TfIdfModel, Vec<SparseVector>) {
        let model = TfIdfModel::fit(docs);
        let vecs = docs.iter().map(|d| model.transform(d)).collect();
        (model, vecs)
    }

    #[test]
    fn separates_two_clear_topics() {
        let docs = two_topic_corpus();
        let (model, vecs) = fit(&docs);
        let r = kmeans_cosine(&vecs, model.vocab_len(), 2, 50, 7);
        assert_eq!(r.k(), 2);
        // All congestion docs together, all U-turn docs together.
        let first = r.assignments[0];
        assert!(r.assignments[..10].iter().all(|a| *a == first));
        let second = r.assignments[10];
        assert_ne!(first, second);
        assert!(r.assignments[10..].iter().all(|a| *a == second));
    }

    #[test]
    fn top_terms_describe_the_cluster() {
        let docs = two_topic_corpus();
        let (r, terms) = cluster_texts(&docs, 2, 7);
        let uturn_cluster = r.assignments[10];
        assert!(
            terms[uturn_cluster].iter().any(|t| t == "u-turn" || t == "detour"),
            "topic terms: {terms:?}"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let docs = two_topic_corpus();
        let (model, vecs) = fit(&docs);
        let a = kmeans_cosine(&vecs, model.vocab_len(), 3, 50, 11);
        let b = kmeans_cosine(&vecs, model.vocab_len(), 3, 50, 11);
        assert_eq!(a.assignments, b.assignments);
    }

    #[test]
    fn k_clamped_to_document_count() {
        let docs = vec!["staying points".to_string(), "u-turn detour".to_string()];
        let (model, vecs) = fit(&docs);
        let r = kmeans_cosine(&vecs, model.vocab_len(), 10, 50, 1);
        assert!(r.k() <= 2);
        assert_eq!(r.assignments.len(), 2);
    }

    #[test]
    fn zero_vectors_and_empty_input() {
        let r = kmeans_cosine(&[], 5, 3, 10, 1);
        assert!(r.assignments.is_empty());
        let (model, _) = fit(&["staying".to_string()]);
        let zeros = vec![SparseVector::new(vec![]), SparseVector::new(vec![])];
        let r = kmeans_cosine(&zeros, model.vocab_len(), 2, 10, 1);
        assert_eq!(r.assignments, vec![0, 0]);
    }

    #[test]
    fn members_partition_documents() {
        let docs = two_topic_corpus();
        let (model, vecs) = fit(&docs);
        let r = kmeans_cosine(&vecs, model.vocab_len(), 2, 50, 5);
        let total: usize = (0..r.k()).map(|c| r.members(c).len()).sum();
        assert_eq!(total, docs.len());
    }
}
