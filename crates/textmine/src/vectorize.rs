//! Tokenization and tf-idf document vectors.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Stopwords: the scaffolding every summary sentence shares. Filtering them
/// keeps vectors about *content* (landmarks, anomalies), not template glue.
const STOPWORDS: [&str; 28] = [
    "the", "a", "an", "to", "from", "of", "at", "in", "on", "with", "and", "then", "it", "was",
    "is", "for", "while", "most", "car", "moved", "started", "which", "than", "drivers", "prefer",
    "choose", "through", "usual",
];

/// Lowercases and splits into alphanumeric word tokens, dropping stopwords
/// and bare numbers (distances and durations vary per trip and would swamp
/// similarity with noise).
pub fn tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            cur.extend(ch.to_lowercase());
        } else if ch == '-' && !cur.is_empty() {
            cur.push('-'); // keep "u-turn", "one-way"
        } else if !cur.is_empty() {
            push_token(&mut out, std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        push_token(&mut out, cur);
    }
    out
}

fn push_token(out: &mut Vec<String>, mut tok: String) {
    while tok.ends_with('-') {
        tok.pop();
    }
    if tok.is_empty() || tok.chars().all(|c| c.is_ascii_digit()) {
        return;
    }
    if STOPWORDS.contains(&tok.as_str()) {
        return;
    }
    out.push(tok);
}

/// A sparse, L2-normalized document vector: sorted `(term_id, weight)` pairs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparseVector {
    entries: Vec<(usize, f64)>,
}

impl SparseVector {
    /// Builds from raw (term, weight) pairs; normalizes to unit L2 length.
    /// An all-zero input produces the zero vector.
    pub fn new(mut entries: Vec<(usize, f64)>) -> Self {
        entries.retain(|(_, w)| *w != 0.0);
        entries.sort_by_key(|(t, _)| *t);
        let norm = entries.iter().map(|(_, w)| w * w).sum::<f64>().sqrt();
        if norm > 0.0 {
            for (_, w) in entries.iter_mut() {
                *w /= norm;
            }
        }
        Self { entries }
    }

    /// The sorted entries.
    pub fn entries(&self) -> &[(usize, f64)] {
        &self.entries
    }

    /// Whether the vector is zero.
    pub fn is_zero(&self) -> bool {
        self.entries.is_empty()
    }

    /// Cosine similarity with another unit vector (= dot product).
    pub fn cosine(&self, other: &SparseVector) -> f64 {
        let (mut i, mut j) = (0, 0);
        let mut dot = 0.0;
        while i < self.entries.len() && j < other.entries.len() {
            match self.entries[i].0.cmp(&other.entries[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    dot += self.entries[i].1 * other.entries[j].1;
                    i += 1;
                    j += 1;
                }
            }
        }
        dot
    }
}

/// A fitted tf-idf vectorizer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TfIdfModel {
    vocab: HashMap<String, usize>,
    terms: Vec<String>,
    idf: Vec<f64>,
    n_docs: usize,
}

impl TfIdfModel {
    /// Fits vocabulary and idf over a corpus.
    pub fn fit<S: AsRef<str>>(docs: &[S]) -> Self {
        let mut vocab: HashMap<String, usize> = HashMap::new();
        let mut terms: Vec<String> = Vec::new();
        let mut df: Vec<usize> = Vec::new();
        for doc in docs {
            let mut toks = tokenize(doc.as_ref());
            toks.sort();
            toks.dedup();
            for t in toks {
                let id = *vocab.entry(t.clone()).or_insert_with(|| {
                    terms.push(t);
                    df.push(0);
                    terms.len() - 1
                });
                df[id] += 1;
            }
        }
        let n = docs.len().max(1);
        let idf = df.iter().map(|d| ((1.0 + n as f64) / (1.0 + *d as f64)).ln() + 1.0).collect();
        Self { vocab, terms, idf, n_docs: docs.len() }
    }

    /// Vocabulary size.
    pub fn vocab_len(&self) -> usize {
        self.terms.len()
    }

    /// Documents the model was fitted on.
    pub fn n_docs(&self) -> usize {
        self.n_docs
    }

    /// The term string for a term id.
    pub fn term(&self, id: usize) -> &str {
        &self.terms[id]
    }

    /// The id for a term, if in vocabulary.
    pub fn term_id(&self, term: &str) -> Option<usize> {
        self.vocab.get(term).copied()
    }

    /// Transforms a document into its tf-idf unit vector (out-of-vocabulary
    /// terms are dropped).
    pub fn transform(&self, doc: &str) -> SparseVector {
        let mut counts: HashMap<usize, f64> = HashMap::new();
        for t in tokenize(doc) {
            if let Some(id) = self.vocab.get(&t) {
                *counts.entry(*id).or_insert(0.0) += 1.0;
            }
        }
        SparseVector::new(counts.into_iter().map(|(id, tf)| (id, tf * self.idf[id])).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_keeps_content_drops_glue() {
        let toks = tokenize(
            "The car started from the Daoxiang Community to the Haidian Hospital \
             with 2 staying points (in total for 167 seconds).",
        );
        assert!(toks.contains(&"daoxiang".to_string()));
        assert!(toks.contains(&"hospital".to_string()));
        assert!(toks.contains(&"staying".to_string()));
        assert!(!toks.contains(&"the".to_string()));
        assert!(!toks.contains(&"167".to_string()), "bare numbers dropped");
    }

    #[test]
    fn tokenize_preserves_hyphenated_terms() {
        let toks = tokenize("conducting one U-turn at Zhichun Road; one-way road");
        assert!(toks.contains(&"u-turn".to_string()), "{toks:?}");
        assert!(toks.contains(&"one-way".to_string()));
        // Trailing hyphens never survive.
        assert!(toks.iter().all(|t| !t.ends_with('-')));
    }

    #[test]
    fn sparse_vector_is_unit_length() {
        let v = SparseVector::new(vec![(3, 2.0), (1, 1.0), (7, 2.0)]);
        let norm: f64 = v.entries().iter().map(|(_, w)| w * w).sum();
        assert!((norm - 1.0).abs() < 1e-12);
        // Sorted by term id.
        assert!(v.entries().windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn cosine_of_disjoint_and_identical() {
        let a = SparseVector::new(vec![(0, 1.0), (1, 1.0)]);
        let b = SparseVector::new(vec![(2, 1.0)]);
        assert_eq!(a.cosine(&b), 0.0);
        assert!((a.cosine(&a) - 1.0).abs() < 1e-12);
        let zero = SparseVector::new(vec![]);
        assert_eq!(a.cosine(&zero), 0.0);
    }

    #[test]
    fn tfidf_ranks_rare_terms_higher() {
        let docs = [
            "smoothly smoothly smoothly",
            "smoothly u-turn",
            "smoothly staying",
            "smoothly staying",
        ];
        let model = TfIdfModel::fit(&docs);
        let v = model.transform("smoothly u-turn");
        let smooth_id = model.term_id("smoothly").unwrap();
        let uturn_id = model.term_id("u-turn").unwrap();
        let get = |id| v.entries().iter().find(|(t, _)| *t == id).map(|(_, w)| *w).unwrap();
        assert!(get(uturn_id) > get(smooth_id), "rare term must outweigh common term");
    }

    #[test]
    fn transform_drops_unknown_terms() {
        let model = TfIdfModel::fit(&["staying points"]);
        let v = model.transform("completely novel words");
        assert!(v.is_zero());
    }

    #[test]
    fn fit_on_empty_corpus() {
        let model = TfIdfModel::fit::<&str>(&[]);
        assert_eq!(model.vocab_len(), 0);
        assert!(model.transform("anything").is_zero());
    }
}
