//! Text processing over trajectory summaries — Sec. VI-C of the paper.
//!
//! "The research on text processing is very mature compared with trajectory
//! processing. After summarizing the trajectories using text, many text
//! processing techniques, e.g., text indexing, text clustering and text
//! categorization, can be directly applied on the summaries. For example,
//! applying the text clustering method on summaries of all the trajectories
//! in a certain region at a specific time period, we can have a quick
//! overview about the traffic condition."
//!
//! This crate supplies exactly those three capabilities, self-contained:
//!
//! * [`index`] — an inverted index with tf-idf ranked keyword search over a
//!   summary corpus ("find all trips with U-turns near the station");
//! * [`vectorize`] — tokenizer + tf-idf document vectors;
//! * [`cluster`] — seeded spherical k-means over the vectors, giving the
//!   "quick overview" groupings the paper sketches (congested trips vs
//!   smooth trips vs detours …).

pub mod cluster;
pub mod index;
pub mod vectorize;

pub use cluster::{cluster_texts, kmeans_cosine, KMeansResult};
pub use index::InvertedIndex;
pub use vectorize::{tokenize, SparseVector, TfIdfModel};
