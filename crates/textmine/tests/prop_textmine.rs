//! Property-based tests for the text-mining layer.

use proptest::prelude::*;
use stmaker_textmine::{kmeans_cosine, tokenize, InvertedIndex, TfIdfModel};

fn docs_strategy() -> impl Strategy<Value = Vec<String>> {
    let word = prop::sample::select(vec![
        "staying", "points", "u-turn", "detour", "speed", "slower", "faster", "highway", "express",
        "station", "mall", "hospital", "smoothly", "junction",
    ]);
    prop::collection::vec(prop::collection::vec(word, 1..12), 1..20)
        .prop_map(|docs| docs.into_iter().map(|d| d.join(" ")).collect())
}

proptest! {
    #[test]
    fn tokenizer_never_panics_and_output_is_clean(text in ".{0,300}") {
        for tok in tokenize(&text) {
            prop_assert!(!tok.is_empty());
            prop_assert!(!tok.ends_with('-'));
            prop_assert!(tok.chars().all(|c| c.is_alphanumeric() || c == '-'));
            prop_assert_eq!(&tok.to_lowercase(), &tok);
        }
    }

    #[test]
    fn vectors_are_unit_or_zero(docs in docs_strategy()) {
        let model = TfIdfModel::fit(&docs);
        for d in &docs {
            let v = model.transform(d);
            if !v.is_zero() {
                let norm: f64 = v.entries().iter().map(|(_, w)| w * w).sum();
                prop_assert!((norm - 1.0).abs() < 1e-9);
            }
            // Self-similarity of a non-zero vector is 1.
            if !v.is_zero() {
                prop_assert!((v.cosine(&v) - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn search_results_are_sound(docs in docs_strategy(), qi in 0usize..20) {
        let index = InvertedIndex::build(&docs);
        let query = &docs[qi % docs.len()];
        let hits = index.search(query, docs.len());
        // Searching with an indexed document always finds it, with itself
        // at (or tied with) the top score.
        prop_assert!(!hits.is_empty());
        let self_id = docs.iter().position(|d| d == query).unwrap();
        let self_score = hits.iter().find(|(d, _)| *d == self_id).map(|(_, s)| *s);
        prop_assert!(self_score.is_some(), "query doc must be among its own results");
        prop_assert!(hits[0].1 <= self_score.unwrap() + 1e-9);
        // Scores descending and in (0, 1 + ε].
        prop_assert!(hits.windows(2).all(|w| w[0].1 >= w[1].1));
        prop_assert!(hits.iter().all(|(_, s)| *s > 0.0 && *s <= 1.0 + 1e-9));
    }

    #[test]
    fn kmeans_assignments_are_complete_and_deterministic(
        docs in docs_strategy(),
        k in 1usize..5,
    ) {
        let model = TfIdfModel::fit(&docs);
        let vecs: Vec<_> = docs.iter().map(|d| model.transform(d)).collect();
        let a = kmeans_cosine(&vecs, model.vocab_len(), k, 30, 42);
        let b = kmeans_cosine(&vecs, model.vocab_len(), k, 30, 42);
        prop_assert_eq!(&a.assignments, &b.assignments);
        prop_assert_eq!(a.assignments.len(), docs.len());
        prop_assert!(a.assignments.iter().all(|c| *c < a.k()));
    }
}
