//! `cargo xtask` — repo-local static analysis driver for the stmaker
//! workspace.
//!
//! Subcommands:
//!
//! * `lint [--root <dir>] [--strict] [--json <path>]` — run the token-aware
//!   L1–L7 lint engine (see `stmaker_xtask::layers` and DESIGN.md §13).
//!   `--strict` promotes hygiene warnings (unused allowlist entries) to
//!   errors; `--json` additionally writes the machine-readable report.
//! * `lint-schema <report.json>` — validate a report written by
//!   `lint --json`: required keys, full L1–L7 layer coverage, and count
//!   consistency.
//! * `obs-schema <report.json> [--require-stages a,b,c]
//!   [--require-counters a,b] [--require-positive a,b]` — validate a
//!   telemetry report produced by `stmaker-cli --metrics-json`, the
//!   Fig. 12 eval binary, or the `obs_report` / `cache_hot_path` benches:
//!   the file must be a JSON object with the `spans` / `counters` /
//!   `gauges` / `histograms` top-level keys, and (optionally) must contain
//!   a span for every named pipeline stage, every named counter, and a
//!   strictly positive value for every named gauge.
//!
//! Run via the `.cargo/config.toml` alias: `cargo xtask lint`.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use stmaker_xtask::engine::{self, LintOptions};

const USAGE: &str =
    "usage: cargo xtask lint [--root <workspace-dir>] [--strict] [--json <path>]\n       \
                     cargo xtask lint-schema <report.json>\n       \
                     cargo xtask obs-schema <report.json> [--require-stages a,b,c]\n           \
                     [--require-counters a,b,c] [--require-positive gauge-a,gauge-b]\n           \
                     [--require-exemplars N] [--require-windows N]\n       \
                     cargo xtask trace-schema <trace.json> [--require-names a,b,c]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(|s| s.as_str()) {
        Some("lint") => cmd_lint(&args[1..]),
        Some("lint-schema") => cmd_lint_schema(&args[1..]),
        Some("obs-schema") => cmd_obs_schema(&args[1..]),
        Some("trace-schema") => cmd_trace_schema(&args[1..]),
        _ => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn cmd_lint(args: &[String]) -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut strict = false;
    let mut json_out: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => match it.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root needs a path");
                    return ExitCode::from(2);
                }
            },
            "--strict" => strict = true,
            "--json" => match it.next() {
                Some(p) => json_out = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--json needs a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unexpected argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(workspace_root);
    let report = match engine::run_lint(&LintOptions { root, strict }) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    for f in &report.findings {
        println!("{f}");
    }
    let per_layer: Vec<String> = report
        .layer_counts
        .iter()
        .filter(|(_, (e, w))| e + w > 0)
        .map(|(l, (e, w))| format!("{l}: {e}E/{w}W"))
        .collect();
    println!(
        "xtask lint: {} file(s) scanned, {} error(s), {} warning(s){}",
        report.files_scanned,
        report.errors,
        report.warnings,
        if per_layer.is_empty() { String::new() } else { format!(" [{}]", per_layer.join(", ")) }
    );
    if let Some(path) = json_out {
        let json = engine::report_to_json(&report);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("xtask lint: writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("xtask lint: JSON report written to {}", path.display());
    }
    if report.errors > 0 {
        eprintln!("xtask lint: {} error(s)", report.errors);
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn cmd_lint_schema(args: &[String]) -> ExitCode {
    let [path] = args else {
        eprintln!("lint-schema needs exactly one report path\n{USAGE}");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("xtask lint-schema: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match engine::validate_report_json(&text) {
        Ok(summary) => {
            println!("xtask lint-schema: {path} ok ({summary})");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("xtask lint-schema: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Validates a `stmaker-obs` telemetry report file: required top-level
/// keys, structural shape, and (optionally) presence of named stage
/// spans, named counters, and strictly positive named gauges.
fn cmd_obs_schema(args: &[String]) -> ExitCode {
    let mut path: Option<PathBuf> = None;
    let mut required: Vec<String> = Vec::new();
    let mut required_counters: Vec<String> = Vec::new();
    let mut required_positive: Vec<String> = Vec::new();
    let mut min_exemplars: Option<usize> = None;
    let mut min_windows: Option<usize> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--require-stages" => match it.next() {
                Some(list) => {
                    required.extend(
                        list.split(',').map(str::trim).filter(|s| !s.is_empty()).map(String::from),
                    );
                }
                None => {
                    eprintln!("--require-stages needs a comma-separated list");
                    return ExitCode::from(2);
                }
            },
            "--require-counters" => match it.next() {
                Some(list) => {
                    required_counters.extend(
                        list.split(',').map(str::trim).filter(|s| !s.is_empty()).map(String::from),
                    );
                }
                None => {
                    eprintln!("--require-counters needs a comma-separated list");
                    return ExitCode::from(2);
                }
            },
            "--require-positive" => match it.next() {
                Some(list) => {
                    required_positive.extend(
                        list.split(',').map(str::trim).filter(|s| !s.is_empty()).map(String::from),
                    );
                }
                None => {
                    eprintln!("--require-positive needs a comma-separated list of gauges");
                    return ExitCode::from(2);
                }
            },
            "--require-exemplars" => match it.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) => min_exemplars = Some(n),
                _ => {
                    eprintln!("--require-exemplars needs a minimum count");
                    return ExitCode::from(2);
                }
            },
            "--require-windows" => match it.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) => min_windows = Some(n),
                _ => {
                    eprintln!("--require-windows needs a minimum count");
                    return ExitCode::from(2);
                }
            },
            other if path.is_none() => path = Some(PathBuf::from(other)),
            other => {
                eprintln!("unexpected argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(path) = path else {
        eprintln!("obs-schema needs a report path\n{USAGE}");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("xtask obs-schema: cannot read {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let span_names = match stmaker_obs::report::validate_json(&text) {
        Ok(names) => names,
        Err(e) => {
            eprintln!("xtask obs-schema: {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let missing: Vec<&String> = required.iter().filter(|s| !span_names.contains(*s)).collect();
    if !missing.is_empty() {
        eprintln!(
            "xtask obs-schema: {}: missing required stage span(s): {}",
            path.display(),
            missing.iter().map(|s| s.as_str()).collect::<Vec<_>>().join(", ")
        );
        return ExitCode::FAILURE;
    }
    if !required_counters.is_empty()
        || !required_positive.is_empty()
        || min_exemplars.is_some()
        || min_windows.is_some()
    {
        // The structural validation above accepted the shape; a full parse
        // gives us counter/gauge values for the presence checks.
        let report = match stmaker_obs::Report::from_json(&text) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("xtask obs-schema: {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        if let Some(min) = min_exemplars {
            if report.exemplars.len() < min {
                eprintln!(
                    "xtask obs-schema: {}: {} exemplar(s), need at least {min}",
                    path.display(),
                    report.exemplars.len()
                );
                return ExitCode::FAILURE;
            }
        }
        if let Some(min) = min_windows {
            if report.windows.len() < min {
                eprintln!(
                    "xtask obs-schema: {}: {} metric window(s), need at least {min}",
                    path.display(),
                    report.windows.len()
                );
                return ExitCode::FAILURE;
            }
        }
        let missing: Vec<&String> =
            required_counters.iter().filter(|c| !report.counters.contains_key(*c)).collect();
        if !missing.is_empty() {
            eprintln!(
                "xtask obs-schema: {}: missing required counter(s): {}",
                path.display(),
                missing.iter().map(|s| s.as_str()).collect::<Vec<_>>().join(", ")
            );
            return ExitCode::FAILURE;
        }
        for gauge in &required_positive {
            match report.gauges.get(gauge) {
                Some(v) if *v > 0.0 => {}
                Some(v) => {
                    eprintln!(
                        "xtask obs-schema: {}: gauge `{gauge}` must be positive, got {v}",
                        path.display()
                    );
                    return ExitCode::FAILURE;
                }
                None => {
                    eprintln!(
                        "xtask obs-schema: {}: missing required gauge `{gauge}`",
                        path.display()
                    );
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    println!(
        "xtask obs-schema: {} ok ({} span name(s){})",
        path.display(),
        span_names.len(),
        if required.is_empty() && required_counters.is_empty() && required_positive.is_empty() {
            String::new()
        } else {
            format!(
                ", {} stage(s) / {} counter(s) / {} positive gauge(s) checked",
                required.len(),
                required_counters.len(),
                required_positive.len()
            )
        }
    );
    ExitCode::SUCCESS
}

/// Validates a Chrome trace-event file written by `--trace-out`:
/// structural shape (known phases, monotone timestamps, stable pid/tid,
/// balanced begin/end pairs) plus, optionally, presence of named spans.
fn cmd_trace_schema(args: &[String]) -> ExitCode {
    let mut path: Option<PathBuf> = None;
    let mut required: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--require-names" => match it.next() {
                Some(list) => {
                    required.extend(
                        list.split(',').map(str::trim).filter(|s| !s.is_empty()).map(String::from),
                    );
                }
                None => {
                    eprintln!("--require-names needs a comma-separated list");
                    return ExitCode::from(2);
                }
            },
            other if path.is_none() => path = Some(PathBuf::from(other)),
            other => {
                eprintln!("unexpected argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(path) = path else {
        eprintln!("trace-schema needs a trace path\n{USAGE}");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("xtask trace-schema: cannot read {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let stats = match stmaker_obs::validate_chrome_trace(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("xtask trace-schema: {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let missing: Vec<&String> = required.iter().filter(|n| !stats.names.contains(*n)).collect();
    if !missing.is_empty() {
        eprintln!(
            "xtask trace-schema: {}: missing required span name(s): {}",
            path.display(),
            missing.iter().map(|s| s.as_str()).collect::<Vec<_>>().join(", ")
        );
        return ExitCode::FAILURE;
    }
    println!(
        "xtask trace-schema: {} ok ({} event(s), {} name(s){})",
        path.display(),
        stats.events,
        stats.names.len(),
        if required.is_empty() {
            String::new()
        } else {
            format!(", {} required name(s) present", required.len())
        }
    );
    ExitCode::SUCCESS
}

/// The workspace root, two levels above this crate's manifest.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().and_then(Path::parent).map(Path::to_path_buf).unwrap_or(manifest)
}
