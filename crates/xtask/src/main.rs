//! `cargo xtask lint` — repo-local static analysis for the stmaker workspace.
//!
//! The workspace reproduces a paper whose algorithms are driven by floating
//! point scores (partition potentials, irregular rates, similarities), so the
//! classic Rust float footguns — `partial_cmp(..).unwrap()` panicking on NaN,
//! silent lossy `as` casts inside DP loops — are exactly the bugs most likely
//! to corrupt a reproduction silently. This binary enforces the repo rules
//! that `cargo clippy` cannot express:
//!
//! * **L1 (NaN safety, workspace-wide):** no `partial_cmp(..).unwrap()` /
//!   `.expect(..)` in non-test code. Use `f64::total_cmp` or an explicit NaN
//!   policy (`unwrap_or(Ordering::..)`), or mark the line with `// nan-ok:
//!   <reason>`.
//! * **L2 (no panics, strict crates):** no `.unwrap()` / `.expect(..)` /
//!   `panic!` / `unreachable!` / `todo!` / `unimplemented!` in the non-test
//!   library code of `core`, `calibration`, `trajectory`, `road`, `routes`,
//!   `obs`. Genuine by-construction invariants go in `lint-allowlist.txt`
//!   with a justification.
//! * **L3 (cast hygiene, DP hot paths):** `as usize` / `as f64` casts in the
//!   partition/similarity/irregular/select hot paths need a `// cast-ok:
//!   <reason>` marker on the same or previous line.
//! * **L4 (error ergonomics, workspace-wide):** every `pub enum *Error` must
//!   implement both `Display` and `std::error::Error`.
//!
//! Findings in report-only crates (`eval`, `bench`, `xtask`, the root
//! `stmaker-suite` package) are downgraded to warnings; everything else is an
//! error and fails the build. The scanner masks comments, strings, and char
//! literals before matching, and skips `#[cfg(test)]` items entirely.
//!
//! A second subcommand, `cargo xtask obs-schema <report.json>
//! [--require-stages a,b,c] [--require-counters a,b] [--require-positive
//! a,b]`, validates a telemetry report produced by `stmaker-cli
//! --metrics-json`, the Fig. 12 eval binary, or the `obs_report` /
//! `cache_hot_path` benches: the file must be a JSON object with the
//! `spans` / `counters` / `gauges` / `histograms` top-level keys, and
//! (optionally) must contain a span for every named pipeline stage,
//! every named counter, and a strictly positive value for every named
//! gauge (how CI checks the committed `BENCH_cache.json` really shows a
//! non-zero warm hit rate and speedup).
//!
//! Run via the `.cargo/config.toml` alias: `cargo xtask lint`.

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Crates whose library code must be panic-free (L2) and fully strict.
const STRICT_CRATES: &[&str] =
    &["cache", "core", "calibration", "trajectory", "road", "routes", "obs", "exec"];

/// Crates linted in report-only mode: findings print as warnings and do not
/// fail the run. `__root__` stands for the workspace-root `stmaker-suite`
/// package.
const REPORT_ONLY_CRATES: &[&str] = &["eval", "bench", "xtask", "__root__"];

/// DP hot-path files subject to the L3 cast rule (workspace-relative).
const HOT_PATH_FILES: &[&str] = &[
    "crates/core/src/partition.rs",
    "crates/core/src/similarity.rs",
    "crates/core/src/irregular.rs",
    "crates/core/src/select.rs",
];

/// The allowlist file, workspace-relative.
const ALLOWLIST_FILE: &str = "lint-allowlist.txt";

/// How findings in a crate are reported.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Level {
    /// All rules, all errors (the five paper-critical crates).
    Strict,
    /// L1 + L4 as errors; L2/L3 not applied (supporting crates).
    Workspace,
    /// All rules, downgraded to warnings (eval/bench/xtask/suite).
    Report,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Severity {
    Error,
    Warning,
}

#[derive(Debug, Clone)]
struct Finding {
    severity: Severity,
    rule: &'static str,
    path: String,
    line: usize,
    message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        write!(f, "{sev}[{}]: {}:{}: {}", self.rule, self.path, self.line, self.message)
    }
}

/// One parsed allowlist entry: suppresses L2 findings in files whose path
/// ends with `path_suffix` on lines containing `needle`.
#[derive(Debug, Clone)]
struct AllowEntry {
    path_suffix: String,
    needle: String,
    justification: String,
}

#[derive(Debug, Default)]
struct Allowlist {
    entries: Vec<AllowEntry>,
    used: std::cell::RefCell<Vec<bool>>,
}

impl Allowlist {
    fn parse(text: &str) -> Result<Self, String> {
        let mut entries = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let parts: Vec<&str> = line.splitn(3, '|').map(str::trim).collect();
            let [path_suffix, needle, justification] = parts.as_slice() else {
                return Err(format!(
                    "{ALLOWLIST_FILE}:{}: expected `path-suffix | needle | justification`",
                    i + 1
                ));
            };
            if justification.is_empty() {
                return Err(format!(
                    "{ALLOWLIST_FILE}:{}: entries need a non-empty justification",
                    i + 1
                ));
            }
            entries.push(AllowEntry {
                path_suffix: path_suffix.to_string(),
                needle: needle.to_string(),
                justification: justification.to_string(),
            });
        }
        let used = std::cell::RefCell::new(vec![false; entries.len()]);
        Ok(Self { entries, used })
    }

    /// Whether `(path, line-text)` matches an entry; marks the entry used.
    fn allows(&self, path: &str, line_text: &str) -> bool {
        for (i, e) in self.entries.iter().enumerate() {
            if path.ends_with(&e.path_suffix) && line_text.contains(&e.needle) {
                self.used.borrow_mut()[i] = true;
                return true;
            }
        }
        false
    }

    fn unused(&self) -> Vec<&AllowEntry> {
        let used = self.used.borrow();
        self.entries.iter().enumerate().filter(|(i, _)| !used[*i]).map(|(_, e)| e).collect()
    }
}

const USAGE: &str = "usage: cargo xtask lint [--root <workspace-dir>]\n       \
                     cargo xtask obs-schema <report.json> [--require-stages a,b,c]\n           \
                     [--require-counters a,b,c] [--require-positive gauge-a,gauge-b]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(|s| s.as_str()) {
        Some("lint") => cmd_lint(&args[1..]),
        Some("obs-schema") => cmd_obs_schema(&args[1..]),
        _ => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn cmd_lint(args: &[String]) -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => match it.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root needs a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unexpected argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(workspace_root);
    match run_lint(&root) {
        Ok(0) => ExitCode::SUCCESS,
        Ok(n) => {
            eprintln!("xtask lint: {n} error(s)");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("xtask lint: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Validates a `stmaker-obs` telemetry report file: required top-level
/// keys, structural shape, and (optionally) presence of named stage
/// spans, named counters, and strictly positive named gauges.
fn cmd_obs_schema(args: &[String]) -> ExitCode {
    let mut path: Option<PathBuf> = None;
    let mut required: Vec<String> = Vec::new();
    let mut required_counters: Vec<String> = Vec::new();
    let mut required_positive: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--require-stages" => match it.next() {
                Some(list) => {
                    required.extend(
                        list.split(',').map(str::trim).filter(|s| !s.is_empty()).map(String::from),
                    );
                }
                None => {
                    eprintln!("--require-stages needs a comma-separated list");
                    return ExitCode::from(2);
                }
            },
            "--require-counters" => match it.next() {
                Some(list) => {
                    required_counters.extend(
                        list.split(',').map(str::trim).filter(|s| !s.is_empty()).map(String::from),
                    );
                }
                None => {
                    eprintln!("--require-counters needs a comma-separated list");
                    return ExitCode::from(2);
                }
            },
            "--require-positive" => match it.next() {
                Some(list) => {
                    required_positive.extend(
                        list.split(',').map(str::trim).filter(|s| !s.is_empty()).map(String::from),
                    );
                }
                None => {
                    eprintln!("--require-positive needs a comma-separated list of gauges");
                    return ExitCode::from(2);
                }
            },
            other if path.is_none() => path = Some(PathBuf::from(other)),
            other => {
                eprintln!("unexpected argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(path) = path else {
        eprintln!("obs-schema needs a report path\n{USAGE}");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("xtask obs-schema: cannot read {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let span_names = match stmaker_obs::report::validate_json(&text) {
        Ok(names) => names,
        Err(e) => {
            eprintln!("xtask obs-schema: {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let missing: Vec<&String> = required.iter().filter(|s| !span_names.contains(*s)).collect();
    if !missing.is_empty() {
        eprintln!(
            "xtask obs-schema: {}: missing required stage span(s): {}",
            path.display(),
            missing.iter().map(|s| s.as_str()).collect::<Vec<_>>().join(", ")
        );
        return ExitCode::FAILURE;
    }
    if !required_counters.is_empty() || !required_positive.is_empty() {
        // The structural validation above accepted the shape; a full parse
        // gives us counter/gauge values for the presence checks.
        let report = match stmaker_obs::Report::from_json(&text) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("xtask obs-schema: {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        let missing: Vec<&String> =
            required_counters.iter().filter(|c| !report.counters.contains_key(*c)).collect();
        if !missing.is_empty() {
            eprintln!(
                "xtask obs-schema: {}: missing required counter(s): {}",
                path.display(),
                missing.iter().map(|s| s.as_str()).collect::<Vec<_>>().join(", ")
            );
            return ExitCode::FAILURE;
        }
        for gauge in &required_positive {
            match report.gauges.get(gauge) {
                Some(v) if *v > 0.0 => {}
                Some(v) => {
                    eprintln!(
                        "xtask obs-schema: {}: gauge `{gauge}` must be positive, got {v}",
                        path.display()
                    );
                    return ExitCode::FAILURE;
                }
                None => {
                    eprintln!(
                        "xtask obs-schema: {}: missing required gauge `{gauge}`",
                        path.display()
                    );
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    println!(
        "xtask obs-schema: {} ok ({} span name(s){})",
        path.display(),
        span_names.len(),
        if required.is_empty() && required_counters.is_empty() && required_positive.is_empty() {
            String::new()
        } else {
            format!(
                ", {} stage(s) / {} counter(s) / {} positive gauge(s) checked",
                required.len(),
                required_counters.len(),
                required_positive.len()
            )
        }
    );
    ExitCode::SUCCESS
}

/// The workspace root, two levels above this crate's manifest.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().and_then(Path::parent).map(Path::to_path_buf).unwrap_or(manifest)
}

fn run_lint(root: &Path) -> Result<usize, String> {
    let allow_text = std::fs::read_to_string(root.join(ALLOWLIST_FILE)).unwrap_or_default();
    let allow = Allowlist::parse(&allow_text)?;

    // (crate key, workspace-relative path, source) for every library file.
    let mut sources: Vec<(String, String, String)> = Vec::new();
    let crates_dir = root.join("crates");
    let entries = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("reading {}: {e}", crates_dir.display()))?;
    let mut crate_names: Vec<String> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| e.to_string())?;
        if entry.path().join("Cargo.toml").is_file() {
            if let Some(name) = entry.file_name().to_str() {
                crate_names.push(name.to_string());
            }
        }
    }
    crate_names.sort();
    for name in &crate_names {
        collect_rs(&crates_dir.join(name).join("src"), root, name, &mut sources)?;
    }
    // The root `stmaker-suite` package's library.
    collect_rs(&root.join("src"), root, "__root__", &mut sources)?;

    let mut findings: Vec<Finding> = Vec::new();
    let mut by_crate: BTreeMap<String, Vec<(String, String)>> = BTreeMap::new();
    for (crate_key, rel, src) in &sources {
        let level = crate_level(crate_key);
        let hot = HOT_PATH_FILES.contains(&rel.as_str());
        findings.extend(lint_source(rel, src, level, hot, &allow));
        by_crate.entry(crate_key.clone()).or_default().push((rel.clone(), mask_source(src)));
    }
    for (crate_key, files) in &by_crate {
        let severity = match crate_level(crate_key) {
            Level::Report => Severity::Warning,
            _ => Severity::Error,
        };
        findings.extend(error_enum_findings(files, severity));
    }
    for e in allow.unused() {
        findings.push(Finding {
            severity: Severity::Warning,
            rule: "allowlist",
            path: ALLOWLIST_FILE.to_string(),
            line: 0,
            message: format!(
                "unused entry `{} | {}` ({})",
                e.path_suffix, e.needle, e.justification
            ),
        });
    }

    findings.sort_by(|a, b| a.path.cmp(&b.path).then(a.line.cmp(&b.line)));
    for f in &findings {
        println!("{f}");
    }
    let errors = findings.iter().filter(|f| f.severity == Severity::Error).count();
    let warnings = findings.len() - errors;
    println!(
        "xtask lint: {} file(s) scanned, {errors} error(s), {warnings} warning(s)",
        sources.len()
    );
    Ok(errors)
}

fn crate_level(crate_key: &str) -> Level {
    if STRICT_CRATES.contains(&crate_key) {
        Level::Strict
    } else if REPORT_ONLY_CRATES.contains(&crate_key) {
        Level::Report
    } else {
        Level::Workspace
    }
}

/// Recursively collects `.rs` files under `dir` as workspace-relative paths.
fn collect_rs(
    dir: &Path,
    root: &Path,
    crate_key: &str,
    out: &mut Vec<(String, String, String)>,
) -> Result<(), String> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Ok(()); // crates without src/ (none today) just scan empty
    };
    let mut paths: Vec<PathBuf> = Vec::new();
    for entry in entries {
        paths.push(entry.map_err(|e| e.to_string())?.path());
    }
    paths.sort();
    for path in paths {
        if path.is_dir() {
            collect_rs(&path, root, crate_key, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path.strip_prefix(root).unwrap_or(&path).to_string_lossy().replace('\\', "/");
            let src = std::fs::read_to_string(&path)
                .map_err(|e| format!("reading {}: {e}", path.display()))?;
            out.push((crate_key.to_string(), rel, src));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Source masking: blank out comments, strings, and char literals so the
// token rules below never fire on prose, while preserving byte offsets.
// ---------------------------------------------------------------------------

fn mask_source(src: &str) -> String {
    let b = src.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(b.len());
    let blank = |byte: u8| if byte == b'\n' { b'\n' } else { b' ' };
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        if c == b'/' && b.get(i + 1) == Some(&b'/') {
            while i < b.len() && b[i] != b'\n' {
                out.push(b' ');
                i += 1;
            }
        } else if c == b'/' && b.get(i + 1) == Some(&b'*') {
            let mut depth = 1usize;
            out.extend([b' ', b' ']);
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    out.extend([b' ', b' ']);
                    i += 2;
                } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    out.extend([b' ', b' ']);
                    i += 2;
                } else {
                    out.push(blank(b[i]));
                    i += 1;
                }
            }
        } else if is_raw_string_start(b, i) {
            let end = raw_string_end(b, i);
            for p in i..end {
                out.push(blank(b[p]));
            }
            i = end;
        } else if c == b'"' || (c == b'b' && b.get(i + 1) == Some(&b'"')) {
            let q = if c == b'b' { i + 1 } else { i };
            for _ in i..=q {
                out.push(b' ');
            }
            i = q + 1;
            while i < b.len() {
                if b[i] == b'\\' && i + 1 < b.len() {
                    out.extend([b' ', b' ']);
                    i += 2;
                } else if b[i] == b'"' {
                    out.push(b' ');
                    i += 1;
                    break;
                } else {
                    out.push(blank(b[i]));
                    i += 1;
                }
            }
        } else if c == b'\'' {
            if b.get(i + 1) == Some(&b'\\') {
                // Escaped char literal: mask through the closing quote.
                let mut k = i + 2;
                while k < b.len() && b[k] != b'\'' {
                    k += 1;
                }
                let end = (k + 1).min(b.len());
                for _ in i..end {
                    out.push(b' ');
                }
                i = end;
            } else if b.get(i + 2) == Some(&b'\'') && b.get(i + 1) != Some(&b'\'') {
                out.extend([b' ', b' ', b' ']);
                i += 3;
            } else {
                out.push(b'\''); // lifetime
                i += 1;
            }
        } else {
            out.push(c);
            i += 1;
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn is_raw_string_start(b: &[u8], i: usize) -> bool {
    let start = match b[i] {
        b'r' => i,
        b'b' if b.get(i + 1) == Some(&b'r') => i + 1,
        _ => return false,
    };
    if i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_') {
        return false; // `r` is the tail of an identifier
    }
    let mut j = start + 1;
    while b.get(j) == Some(&b'#') {
        j += 1;
    }
    b.get(j) == Some(&b'"')
}

fn raw_string_end(b: &[u8], i: usize) -> usize {
    let start = if b[i] == b'b' { i + 1 } else { i };
    let mut j = start + 1;
    let mut hashes = 0usize;
    while b.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    let mut k = j + 1; // past the opening quote
    while k < b.len() {
        if b[k] == b'"' {
            let mut h = 0usize;
            let mut m = k + 1;
            while h < hashes && b.get(m) == Some(&b'#') {
                h += 1;
                m += 1;
            }
            if h == hashes {
                return m;
            }
        }
        k += 1;
    }
    b.len()
}

/// Byte offsets at which each line starts (line numbers are 1-based).
fn line_starts(src: &str) -> Vec<usize> {
    let mut starts = vec![0usize];
    for (i, c) in src.bytes().enumerate() {
        if c == b'\n' {
            starts.push(i + 1);
        }
    }
    starts
}

fn line_of(starts: &[usize], offset: usize) -> usize {
    starts.partition_point(|&s| s <= offset)
}

/// Marks every line that belongs to a `#[cfg(test)]` item (attribute line
/// through the item's closing brace or semicolon).
fn test_line_mask(masked: &str, starts: &[usize]) -> Vec<bool> {
    // Lines are 1-based, so index `starts.len()` (the last line) must fit.
    let mut is_test = vec![false; starts.len() + 1];
    let b = masked.as_bytes();
    let mut from = 0usize;
    while let Some(pos) = masked[from..].find("#[cfg(test)]") {
        let attr_start = from + pos;
        let mut j = attr_start + "#[cfg(test)]".len();
        while j < b.len() && b[j] != b'{' && b[j] != b';' {
            j += 1;
        }
        let end = if j < b.len() && b[j] == b'{' {
            let mut depth = 0usize;
            let mut k = j;
            while k < b.len() {
                match b[k] {
                    b'{' => depth += 1,
                    b'}' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            k
        } else {
            j
        };
        let first = line_of(starts, attr_start);
        let last = line_of(starts, end.min(b.len().saturating_sub(1)));
        for line in first..=last {
            if line < is_test.len() {
                is_test[line] = true;
            }
        }
        from = end.min(b.len());
        if from <= attr_start {
            break; // defensive: never loop in place
        }
    }
    is_test
}

// ---------------------------------------------------------------------------
// Token scanning and the lint rules.
// ---------------------------------------------------------------------------

/// Identifier tokens (word, start offset) in the masked source.
fn ident_tokens(masked: &str) -> Vec<(String, usize)> {
    let b = masked.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < b.len() {
        let c = b[i];
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = i;
            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                i += 1;
            }
            out.push((masked[start..i].to_string(), start));
        } else {
            i += 1;
        }
    }
    out
}

fn prev_nonspace(b: &[u8], mut i: usize) -> Option<u8> {
    while i > 0 {
        i -= 1;
        if !b[i].is_ascii_whitespace() {
            return Some(b[i]);
        }
    }
    None
}

fn next_nonspace(b: &[u8], mut i: usize) -> Option<(u8, usize)> {
    while i < b.len() {
        if !b[i].is_ascii_whitespace() {
            return Some((b[i], i));
        }
        i += 1;
    }
    None
}

/// The matching `)` offset for the `(` at `open`.
fn matching_paren(b: &[u8], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    let mut i = open;
    while i < b.len() {
        match b[i] {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// The identifier starting at or after `i` (skipping whitespace), if any.
fn ident_at(masked: &str, i: usize) -> Option<(String, usize)> {
    let b = masked.as_bytes();
    let (c, start) = next_nonspace(b, i)?;
    if !(c.is_ascii_alphabetic() || c == b'_') {
        return None;
    }
    let mut end = start;
    while end < b.len() && (b[end].is_ascii_alphanumeric() || b[end] == b'_') {
        end += 1;
    }
    Some((masked[start..end].to_string(), end))
}

/// Whether the original line at `line` (or the one above) carries `marker`.
fn has_marker(lines: &[&str], line: usize, marker: &str) -> bool {
    let idx = line.saturating_sub(1); // to 0-based
    lines.get(idx).is_some_and(|l| l.contains(marker))
        || (idx > 0 && lines.get(idx - 1).is_some_and(|l| l.contains(marker)))
}

/// Lints one file. `hot` enables the L3 cast rule.
fn lint_source(rel: &str, src: &str, level: Level, hot: bool, allow: &Allowlist) -> Vec<Finding> {
    let masked = mask_source(src);
    let starts = line_starts(src);
    let is_test = test_line_mask(&masked, &starts);
    let orig_lines: Vec<&str> = src.lines().collect();
    let b = masked.as_bytes();
    let mut findings = Vec::new();
    let severity = match level {
        Level::Report => Severity::Warning,
        _ => Severity::Error,
    };

    let mut push = |rule: &'static str, line: usize, message: String| {
        findings.push(Finding { severity, rule, path: rel.to_string(), line, message });
    };

    for (word, start) in ident_tokens(&masked) {
        let line = line_of(&starts, start);
        if is_test.get(line).copied().unwrap_or(false) {
            continue;
        }
        let orig_line = orig_lines.get(line - 1).copied().unwrap_or("");
        match word.as_str() {
            // L1: `.partial_cmp(..).unwrap()` / `.expect(..)` — NaN panic.
            "partial_cmp" if prev_nonspace(b, start) == Some(b'.') => {
                let after = start + word.len();
                let Some((b'(', open)) = next_nonspace(b, after) else { continue };
                let Some(close) = matching_paren(b, open) else { continue };
                let Some((b'.', dot)) = next_nonspace(b, close + 1) else { continue };
                let Some((next_word, _)) = ident_at(&masked, dot + 1) else { continue };
                if matches!(next_word.as_str(), "unwrap" | "expect")
                    && !has_marker(&orig_lines, line, "nan-ok:")
                {
                    push(
                        "L1",
                        line,
                        format!(
                            "`partial_cmp(..).{next_word}(..)` panics on NaN; \
                             use `f64::total_cmp` or mark `// nan-ok: <reason>`"
                        ),
                    );
                }
            }
            // L2: panicking calls in strict library code.
            "unwrap" | "expect" if level == Level::Strict || level == Level::Report => {
                if prev_nonspace(b, start) != Some(b'.') {
                    continue;
                }
                let after = start + word.len();
                if !matches!(next_nonspace(b, after), Some((b'(', _))) {
                    continue;
                }
                if allow.allows(rel, orig_line) {
                    continue;
                }
                push(
                    "L2",
                    line,
                    format!(
                        "`.{word}(..)` in non-test library code; return an error \
                         or add a justified entry to {ALLOWLIST_FILE}"
                    ),
                );
            }
            "panic" | "unreachable" | "todo" | "unimplemented"
                if level == Level::Strict || level == Level::Report =>
            {
                let after = start + word.len();
                if !matches!(next_nonspace(b, after), Some((b'!', _))) {
                    continue;
                }
                if allow.allows(rel, orig_line) {
                    continue;
                }
                push(
                    "L2",
                    line,
                    format!(
                        "`{word}!` in non-test library code; return an error \
                         or add a justified entry to {ALLOWLIST_FILE}"
                    ),
                );
            }
            // L3: lossy casts in DP hot paths need a cast-ok marker.
            "as" if hot => {
                let after = start + word.len();
                let Some((target, _)) = ident_at(&masked, after) else { continue };
                if matches!(target.as_str(), "usize" | "f64")
                    && !has_marker(&orig_lines, line, "cast-ok:")
                {
                    push(
                        "L3",
                        line,
                        format!(
                            "lossy `as {target}` in a DP hot path; justify with \
                             `// cast-ok: <reason>` on this or the previous line"
                        ),
                    );
                }
            }
            _ => {}
        }
    }
    findings
}

/// L4: every `pub enum *Error` in the crate must implement `Display` and
/// `std::error::Error`. `files` holds (workspace-relative path, MASKED source).
fn error_enum_findings(files: &[(String, String)], severity: Severity) -> Vec<Finding> {
    let mut enums: Vec<(String, String, usize)> = Vec::new(); // (name, path, line)
    let mut displayed: Vec<String> = Vec::new();
    let mut errored: Vec<String> = Vec::new();
    for (path, masked) in files {
        let starts = line_starts(masked);
        let toks = ident_tokens(masked);
        for (i, (word, start)) in toks.iter().enumerate() {
            match word.as_str() {
                "enum" => {
                    let is_pub = i >= 1 && toks[i - 1].0 == "pub"
                        || i >= 2 && toks[i - 2].0 == "pub" && toks[i - 1].0 == "crate";
                    if !is_pub {
                        continue;
                    }
                    if let Some((name, _)) = toks.get(i + 1) {
                        if name.ends_with("Error") {
                            enums.push((name.clone(), path.clone(), line_of(&starts, *start)));
                        }
                    }
                }
                "Display" | "Error" => {
                    if toks.get(i + 1).map(|(w, _)| w.as_str()) == Some("for") {
                        if let Some((target, _)) = toks.get(i + 2) {
                            if word == "Display" {
                                displayed.push(target.clone());
                            } else {
                                errored.push(target.clone());
                            }
                        }
                    }
                }
                _ => {}
            }
        }
    }
    let mut findings = Vec::new();
    for (name, path, line) in enums {
        let mut missing = Vec::new();
        if !displayed.contains(&name) {
            missing.push("Display");
        }
        if !errored.contains(&name) {
            missing.push("std::error::Error");
        }
        if !missing.is_empty() {
            findings.push(Finding {
                severity,
                rule: "L4",
                path,
                line,
                message: format!(
                    "public error enum `{name}` does not implement {}",
                    missing.join(" + ")
                ),
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str, level: Level, hot: bool) -> Vec<Finding> {
        lint_source("crates/demo/src/lib.rs", src, level, hot, &Allowlist::default())
    }

    #[test]
    fn l1_flags_partial_cmp_unwrap() {
        let src = "fn f(v: &mut Vec<f64>) {\n    v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n}\n";
        let f = lint(src, Level::Workspace, false);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "L1");
        assert_eq!(f[0].line, 2);
        assert_eq!(f[0].severity, Severity::Error);
    }

    #[test]
    fn l1_flags_multiline_chain_and_expect() {
        let src = "fn f(a: f64, b: f64) -> std::cmp::Ordering {\n    a\n        .partial_cmp(&b)\n        .expect(\"finite\")\n}\n";
        let f = lint(src, Level::Workspace, false);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "L1");
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn l1_accepts_total_cmp_and_explicit_policy() {
        let src = "fn f(v: &mut Vec<f64>) {\n    v.sort_by(|a, b| a.total_cmp(b));\n    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));\n}\n";
        assert!(lint(src, Level::Strict, false).is_empty());
    }

    #[test]
    fn l1_respects_nan_ok_marker() {
        let src = "fn f(a: f64, b: f64) {\n    // nan-ok: inputs validated finite at the API boundary\n    let _ = a.partial_cmp(&b).unwrap();\n}\n";
        assert!(lint(src, Level::Workspace, false).is_empty());
    }

    #[test]
    fn cfg_test_items_are_skipped() {
        let src = "pub fn ok() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        let v: Vec<f64> = vec![];\n        let _ = v.iter().copied().fold(f64::NAN, f64::max).partial_cmp(&0.0).unwrap();\n        Some(1).unwrap();\n        panic!(\"fine in tests\");\n    }\n}\n";
        assert!(lint(src, Level::Strict, false).is_empty());
    }

    #[test]
    fn l2_flags_unwrap_expect_and_panics_in_strict_code() {
        let src = "pub fn f(x: Option<u32>) -> u32 {\n    let a = x.unwrap();\n    let b = x.expect(\"set\");\n    if a + b > 9 { panic!(\"boom\") }\n    unreachable!()\n}\n";
        let f = lint(src, Level::Strict, false);
        let rules: Vec<&str> = f.iter().map(|f| f.rule).collect();
        assert_eq!(rules, ["L2", "L2", "L2", "L2"], "{f:?}");
    }

    #[test]
    fn l2_not_applied_outside_strict_or_report_crates() {
        let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert!(lint(src, Level::Workspace, false).is_empty());
        assert_eq!(lint(src, Level::Strict, false).len(), 1);
    }

    #[test]
    fn l2_ignores_unwrap_or_family_and_comments_and_strings() {
        let src = "pub fn f(x: Option<u32>) -> u32 {\n    // a comment saying x.unwrap() and panic!()\n    let s = \"x.unwrap() panic!()\";\n    let _ = s;\n    x.unwrap_or_default().max(x.unwrap_or(3))\n}\n";
        assert!(lint(src, Level::Strict, false).is_empty());
    }

    #[test]
    fn l2_allowlist_suppresses_with_justification() {
        let src = "pub fn f(x: Option<u32>) -> u32 {\n    x.expect(\"set by constructor\")\n}\n";
        let allow = Allowlist::parse(
            "crates/demo/src/lib.rs | expect(\"set by constructor\") | constructor invariant",
        )
        .expect("parses");
        let f = lint_source("crates/demo/src/lib.rs", src, Level::Strict, false, &allow);
        assert!(f.is_empty(), "{f:?}");
        assert!(allow.unused().is_empty());
    }

    #[test]
    fn allowlist_rejects_missing_justification() {
        assert!(Allowlist::parse("a.rs | needle |").is_err());
        assert!(Allowlist::parse("a.rs | needle").is_err());
        assert!(Allowlist::parse("# comment only\n").is_ok());
    }

    #[test]
    fn l3_flags_unmarked_casts_in_hot_files_only() {
        let src = "pub fn f(n: usize) -> f64 {\n    let x = n as f64;\n    let y = x as usize;\n    // cast-ok: segment count bounded by trajectory length\n    let z = y as f64;\n    x + z\n}\n";
        let f = lint(src, Level::Strict, true);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|f| f.rule == "L3"));
        assert!(lint(src, Level::Strict, false).is_empty());
    }

    #[test]
    fn l4_flags_missing_impls() {
        let files = vec![(
            "crates/demo/src/lib.rs".to_string(),
            mask_source("pub enum ParseError { Bad }\nimpl std::fmt::Display for ParseError {}\n"),
        )];
        let f = error_enum_findings(&files, Severity::Error);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("std::error::Error"));
    }

    #[test]
    fn l4_passes_complete_error_enums_across_files() {
        let files = vec![
            ("crates/demo/src/lib.rs".to_string(), mask_source("pub enum IoError { Bad }\n")),
            (
                "crates/demo/src/err.rs".to_string(),
                mask_source(
                    "impl fmt::Display for IoError {}\nimpl std::error::Error for IoError {}\n",
                ),
            ),
        ];
        assert!(error_enum_findings(&files, Severity::Error).is_empty());
    }

    #[test]
    fn l4_ignores_private_and_non_error_enums() {
        let files = vec![(
            "crates/demo/src/lib.rs".to_string(),
            mask_source("enum InternalError { A }\npub enum Mode { A, B }\n"),
        )];
        assert!(error_enum_findings(&files, Severity::Error).is_empty());
    }

    #[test]
    fn report_level_downgrades_to_warning() {
        let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let f = lint(src, Level::Report, false);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].severity, Severity::Warning);
    }

    #[test]
    fn masking_handles_raw_strings_chars_and_lifetimes() {
        let src = "fn f<'a>(s: &'a str) -> char {\n    let _r = r#\"panic!() .unwrap()\"#;\n    let q = '\"';\n    let _e = '\\n';\n    q\n}\n";
        let f = lint(src, Level::Strict, false);
        assert!(f.is_empty(), "{f:?}");
        // Masking preserves line structure.
        assert_eq!(mask_source(src).lines().count(), src.lines().count());
    }
}
