//! Repo-local static analysis for the stmaker workspace — library side.
//!
//! The `cargo xtask` binary is a thin CLI over this library so the
//! fixtures-based integration tests (`tests/lint_fixtures.rs`) can drive
//! the engine in-process. Layout:
//!
//! * [`lexer`] — the hand-rolled Rust tokenizer every layer matches over.
//! * [`layers`] — the L1–L7 rule catalog (see DESIGN.md §13).
//! * [`allowlist`] — the structured `lint-allowlist.txt` (v2) parser.
//! * [`engine`] — collection, dispatch, ratchet, and the JSON report.

pub mod allowlist;
pub mod engine;
pub mod layers;
pub mod lexer;
