//! The lint engine: file collection, layer dispatch, allowlist and
//! ratchet enforcement, and the machine-readable JSON report.

use crate::allowlist::{Allowlist, ALLOWLIST_FILE};
use crate::layers::{self, FileCtx, Finding, Level, Severity};
use crate::lexer::{lex, Lexed};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Crates whose library code must be panic-free (L2) and fully strict.
pub const STRICT_CRATES: &[&str] =
    &["cache", "core", "calibration", "trajectory", "road", "routes", "obs", "exec", "server"];

/// Crates/groups linted in report-only mode: findings print as warnings
/// and do not fail the run. `__root__` is the workspace-root
/// `stmaker-suite` package; `__examples__` / `__experiments__` are the
/// non-crate report-only lanes.
pub const REPORT_ONLY_CRATES: &[&str] =
    &["eval", "bench", "xtask", "__root__", "__examples__", "__experiments__"];

/// DP hot-path files subject to the L3 cast rule (workspace-relative).
pub const HOT_PATH_FILES: &[&str] = &[
    "crates/core/src/partition.rs",
    "crates/core/src/similarity.rs",
    "crates/core/src/irregular.rs",
    "crates/core/src/select.rs",
];

/// The ratchet file holding per-layer finding baselines, workspace-relative.
pub const RATCHET_FILE: &str = "lint-ratchet.txt";

/// Layers subject to the ratchet (count may only go down).
const RATCHETED_LAYERS: &[&str] = &["L5", "L6"];

/// All layer keys, in report order.
pub const ALL_LAYERS: &[&str] = &["L1", "L2", "L3", "L4", "L5", "L6", "L7"];

#[derive(Debug, Clone)]
pub struct LintOptions {
    pub root: PathBuf,
    /// Promote hygiene warnings (unused allowlist entries) to errors.
    pub strict: bool,
}

#[derive(Debug)]
pub struct LintReport {
    pub files_scanned: usize,
    pub findings: Vec<Finding>,
    /// Layer (or `allowlist`/`ratchet`) → (errors, warnings).
    pub layer_counts: BTreeMap<String, (usize, usize)>,
    pub errors: usize,
    pub warnings: usize,
    pub strict: bool,
}

pub fn crate_level(crate_key: &str) -> Level {
    if STRICT_CRATES.contains(&crate_key) {
        Level::Strict
    } else if REPORT_ONLY_CRATES.contains(&crate_key) {
        Level::Report
    } else {
        Level::Workspace
    }
}

struct SourceFile {
    crate_key: String,
    rel: String,
    src: String,
}

/// Recursively collects `.rs` files under `dir` as workspace-relative paths.
fn collect_rs(
    dir: &Path,
    root: &Path,
    crate_key: &str,
    out: &mut Vec<SourceFile>,
) -> Result<(), String> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Ok(()); // groups without sources (e.g. experiments/) scan empty
    };
    let mut paths: Vec<PathBuf> = Vec::new();
    for entry in entries {
        paths.push(entry.map_err(|e| e.to_string())?.path());
    }
    paths.sort();
    for path in paths {
        if path.is_dir() {
            collect_rs(&path, root, crate_key, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path.strip_prefix(root).unwrap_or(&path).to_string_lossy().replace('\\', "/");
            let src = std::fs::read_to_string(&path)
                .map_err(|e| format!("reading {}: {e}", path.display()))?;
            out.push(SourceFile { crate_key: crate_key.to_string(), rel, src });
        }
    }
    Ok(())
}

fn collect_sources(root: &Path) -> Result<Vec<SourceFile>, String> {
    let mut sources = Vec::new();
    let crates_dir = root.join("crates");
    let entries = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("reading {}: {e}", crates_dir.display()))?;
    let mut crate_names: Vec<String> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| e.to_string())?;
        if entry.path().join("Cargo.toml").is_file() {
            if let Some(name) = entry.file_name().to_str() {
                crate_names.push(name.to_string());
            }
        }
    }
    crate_names.sort();
    for name in &crate_names {
        collect_rs(&crates_dir.join(name).join("src"), root, name, &mut sources)?;
        // Criterion-style bench targets live outside src/ but still emit
        // obs names (the `bench.*` gauge family) — scan them too.
        collect_rs(&crates_dir.join(name).join("benches"), root, name, &mut sources)?;
    }
    // The root `stmaker-suite` package's library, plus the report-only
    // lanes over examples/ and experiments/.
    collect_rs(&root.join("src"), root, "__root__", &mut sources)?;
    collect_rs(&root.join("examples"), root, "__examples__", &mut sources)?;
    collect_rs(&root.join("experiments"), root, "__experiments__", &mut sources)?;
    Ok(sources)
}

/// Parses `lint-ratchet.txt`: `layer <count>` lines, `#` comments.
fn parse_ratchet(text: &str) -> Result<BTreeMap<String, usize>, String> {
    let mut out = BTreeMap::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let (Some(layer), Some(count), None) = (it.next(), it.next(), it.next()) else {
            return Err(format!("{RATCHET_FILE}:{}: expected `<layer> <count>`", i + 1));
        };
        let count: usize =
            count.parse().map_err(|_| format!("{RATCHET_FILE}:{}: bad count `{count}`", i + 1))?;
        out.insert(layer.to_string(), count);
    }
    Ok(out)
}

/// Runs the full L1–L7 lint over the workspace at `opts.root`.
pub fn run_lint(opts: &LintOptions) -> Result<LintReport, String> {
    let root = &opts.root;
    let allow_text = std::fs::read_to_string(root.join(ALLOWLIST_FILE)).unwrap_or_default();
    let allow = Allowlist::parse(&allow_text)?;
    let design_text = std::fs::read_to_string(root.join("DESIGN.md")).unwrap_or_default();
    let registry = layers::obs_names::ObsRegistry::from_markdown(&design_text);
    let ratchet_text = std::fs::read_to_string(root.join(RATCHET_FILE)).ok();
    let ratchet = match &ratchet_text {
        Some(t) => Some(parse_ratchet(t)?),
        None => None,
    };

    let sources = collect_sources(root)?;
    let lexed: Vec<Lexed<'_>> = sources.iter().map(|s| lex(&s.src)).collect();
    let ctxs: Vec<FileCtx<'_>> = sources
        .iter()
        .zip(&lexed)
        .map(|(s, lx)| {
            // Bench targets are report-only regardless of their crate:
            // benches may unwrap and read the clock, but their obs names
            // still feed the L7 registry check.
            let level =
                if s.rel.contains("/benches/") { Level::Report } else { crate_level(&s.crate_key) };
            let hot = HOT_PATH_FILES.contains(&s.rel.as_str());
            FileCtx::new(&s.crate_key, &s.rel, lx, level, hot)
        })
        .collect();

    let mut findings: Vec<Finding> = Vec::new();

    // Per-file layers.
    for ctx in &ctxs {
        findings.extend(layers::nan::scan(ctx));
        findings.extend(layers::panics::scan(ctx, &allow));
        findings.extend(layers::casts::scan(ctx));
        findings.extend(layers::determinism::scan(ctx));
        findings.extend(layers::locks::scan(ctx));
        findings.extend(layers::obs_names::scan(ctx, &registry));
    }
    // L4 is cross-file per crate.
    let mut by_crate: BTreeMap<&str, Vec<&FileCtx<'_>>> = BTreeMap::new();
    for ctx in &ctxs {
        by_crate.entry(ctx.crate_key).or_default().push(ctx);
    }
    for (crate_key, files) in &by_crate {
        let severity = layers::severity_for(crate_level(crate_key));
        findings.extend(layers::errors::scan(files, severity));
    }

    // Centralized allowlist filter for layers that don't consult it inline
    // (L2 already did, so its entries are marked used by now; checking
    // again here is a no-op for suppressed findings).
    let ctx_by_rel: BTreeMap<&str, &FileCtx<'_>> = ctxs.iter().map(|c| (c.rel, c)).collect();
    findings.retain(|f| {
        let code_line = ctx_by_rel.get(f.path.as_str()).map_or("", |c| c.code_line(f.line));
        !allow.allows(f.rule, &f.path, code_line)
    });

    // Allowlist hygiene: ambiguous suffixes are always errors; unused
    // entries warn (error under --strict).
    let scanned_paths: Vec<String> = sources.iter().map(|s| s.rel.clone()).collect();
    for (e, hits) in allow.ambiguous(&scanned_paths) {
        findings.push(Finding {
            severity: Severity::Error,
            rule: "allowlist",
            path: ALLOWLIST_FILE.to_string(),
            line: e.src_line,
            message: format!(
                "path-suffix `{}` is ambiguous: matches {} files ({}); qualify it",
                e.path_suffix,
                hits.len(),
                hits.join(", ")
            ),
        });
    }
    for e in allow.unused() {
        findings.push(Finding {
            severity: if opts.strict { Severity::Error } else { Severity::Warning },
            rule: "allowlist",
            path: ALLOWLIST_FILE.to_string(),
            line: e.src_line,
            message: format!(
                "unused entry `{} | {} | {}` ({})",
                e.layer, e.path_suffix, e.needle, e.justification
            ),
        });
    }
    if !registry.present {
        findings.push(Finding {
            severity: Severity::Warning,
            rule: "L7",
            path: "DESIGN.md".to_string(),
            line: 0,
            message: "no instrumentation tables found (backticked names in markdown \
                      table rows); L7 membership checks were skipped"
                .to_string(),
        });
    }

    // Per-layer counts (before ratchet findings, which are derived).
    let mut layer_counts: BTreeMap<String, (usize, usize)> = BTreeMap::new();
    for l in ALL_LAYERS.iter().chain(&["allowlist", "ratchet"]) {
        layer_counts.insert((*l).to_string(), (0, 0));
    }
    for f in &findings {
        let slot = layer_counts.entry(f.rule.to_string()).or_insert((0, 0));
        match f.severity {
            Severity::Error => slot.0 += 1,
            Severity::Warning => slot.1 += 1,
        }
    }

    // Ratchet: L5/L6 totals may not exceed the committed baseline.
    if let Some(baselines) = &ratchet {
        for layer in RATCHETED_LAYERS {
            let (e, w) = layer_counts.get(*layer).copied().unwrap_or((0, 0));
            let current = e + w;
            let Some(&baseline) = baselines.get(*layer) else {
                findings.push(Finding {
                    severity: Severity::Warning,
                    rule: "ratchet",
                    path: RATCHET_FILE.to_string(),
                    line: 0,
                    message: format!("no `{layer}` baseline committed; add `{layer} {current}`"),
                });
                continue;
            };
            if current > baseline {
                findings.push(Finding {
                    severity: Severity::Error,
                    rule: "ratchet",
                    path: RATCHET_FILE.to_string(),
                    line: 0,
                    message: format!(
                        "{layer} findings regressed: {current} > committed baseline {baseline}"
                    ),
                });
            } else if current < baseline {
                findings.push(Finding {
                    severity: Severity::Warning,
                    rule: "ratchet",
                    path: RATCHET_FILE.to_string(),
                    line: 0,
                    message: format!(
                        "{layer} findings dropped to {current}; tighten {RATCHET_FILE} \
                         from {baseline}"
                    ),
                });
            }
        }
        // Recount with ratchet findings included.
        for f in findings.iter().filter(|f| f.rule == "ratchet") {
            let slot = layer_counts.entry("ratchet".to_string()).or_insert((0, 0));
            match f.severity {
                Severity::Error => slot.0 += 1,
                Severity::Warning => slot.1 += 1,
            }
        }
    }

    findings.sort_by(|a, b| a.path.cmp(&b.path).then(a.line.cmp(&b.line)));
    let errors = findings.iter().filter(|f| f.severity == Severity::Error).count();
    let warnings = findings.len() - errors;
    Ok(LintReport {
        files_scanned: sources.len(),
        findings,
        layer_counts,
        errors,
        warnings,
        strict: opts.strict,
    })
}

/// Serializes a report to the machine-readable JSON consumed by
/// `cargo xtask lint-schema` and CI.
pub fn report_to_json(report: &LintReport) -> String {
    let layers = serde_json::Value::Map(
        report
            .layer_counts
            .iter()
            .map(|(k, (e, w))| (k.clone(), serde_json::json!({ "errors": *e, "warnings": *w })))
            .collect(),
    );
    let findings: Vec<serde_json::Value> = report
        .findings
        .iter()
        .map(|f| {
            serde_json::json!({
                "layer": f.rule,
                "severity": match f.severity {
                    Severity::Error => "error",
                    Severity::Warning => "warning",
                },
                "path": f.path,
                "line": f.line,
                "message": f.message,
            })
        })
        .collect();
    let v = serde_json::json!({
        "tool": "stmaker-xtask-lint",
        "version": 2,
        "strict": report.strict,
        "files_scanned": report.files_scanned,
        "errors": report.errors,
        "warnings": report.warnings,
        "layers": layers,
        "findings": findings,
    });
    serde_json::to_string_pretty(&v).unwrap_or_else(|_| "{}".to_string())
}

/// Validates a lint JSON report: required keys, full layer coverage, and
/// count consistency. Returns a one-line summary on success.
pub fn validate_report_json(text: &str) -> Result<String, String> {
    use serde_json::Value;
    let v: Value = serde_json::from_str(text).map_err(|e| format!("not valid JSON: {e}"))?;
    v.as_object().ok_or("top level must be a JSON object")?;
    if v.get("tool").and_then(Value::as_str) != Some("stmaker-xtask-lint") {
        return Err("`tool` must be \"stmaker-xtask-lint\"".to_string());
    }
    if v.get("version").and_then(Value::as_u64) != Some(2) {
        return Err("`version` must be 2".to_string());
    }
    let get_u64 = |key: &str| -> Result<u64, String> {
        v.get(key).and_then(Value::as_u64).ok_or_else(|| format!("missing or non-integer `{key}`"))
    };
    let files_scanned = get_u64("files_scanned")?;
    let errors = get_u64("errors")?;
    let warnings = get_u64("warnings")?;
    let layers = v.get("layers").ok_or("missing `layers` object")?;
    let layer_entries = layers.as_object().ok_or("`layers` must be an object")?;
    for required in ALL_LAYERS.iter().chain(&["allowlist", "ratchet"]) {
        let entry =
            layers.get(required).ok_or_else(|| format!("`layers` must cover `{required}`"))?;
        for k in ["errors", "warnings"] {
            entry
                .get(k)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("`layers.{required}.{k}` must be an integer"))?;
        }
    }
    let findings = v.get("findings").and_then(Value::as_array).ok_or("missing `findings` array")?;
    let mut counted_errors = 0u64;
    let mut counted_warnings = 0u64;
    for (i, f) in findings.iter().enumerate() {
        f.as_object().ok_or_else(|| format!("findings[{i}] must be an object"))?;
        let layer = f
            .get("layer")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("findings[{i}].layer must be a string"))?;
        if layers.get(layer).is_none() {
            return Err(format!("findings[{i}].layer `{layer}` not in `layers`"));
        }
        for k in ["path", "message", "severity"] {
            f.get(k)
                .and_then(Value::as_str)
                .ok_or_else(|| format!("findings[{i}].{k} must be a string"))?;
        }
        f.get("line")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("findings[{i}].line must be an integer"))?;
        match f.get("severity").and_then(Value::as_str) {
            Some("error") => counted_errors += 1,
            Some("warning") => counted_warnings += 1,
            other => return Err(format!("findings[{i}].severity bad: {other:?}")),
        }
    }
    if counted_errors != errors || counted_warnings != warnings {
        return Err(format!(
            "count mismatch: top-level says {errors} error(s)/{warnings} warning(s), \
             findings hold {counted_errors}/{counted_warnings}"
        ));
    }
    let layer_errors: u64 =
        layer_entries.iter().filter_map(|(_, l)| l.get("errors").and_then(Value::as_u64)).sum();
    let layer_warnings: u64 =
        layer_entries.iter().filter_map(|(_, l)| l.get("warnings").and_then(Value::as_u64)).sum();
    if layer_errors != errors || layer_warnings != warnings {
        return Err(format!(
            "layer count mismatch: layers sum to {layer_errors}/{layer_warnings}, \
             top-level says {errors}/{warnings}"
        ));
    }
    Ok(format!(
        "{files_scanned} file(s), {errors} error(s), {warnings} warning(s), \
         {} finding(s), all layers covered",
        findings.len()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratchet_parses_and_rejects_garbage() {
        let r = parse_ratchet("# c\nL5 3\nL6 0\n").expect("parses");
        assert_eq!(r.get("L5"), Some(&3));
        assert_eq!(r.get("L6"), Some(&0));
        assert!(parse_ratchet("L5 x\n").is_err());
        assert!(parse_ratchet("L5 1 2\n").is_err());
    }

    #[test]
    fn json_roundtrip_validates() {
        let report = LintReport {
            files_scanned: 3,
            findings: vec![Finding {
                severity: Severity::Warning,
                rule: "L2",
                path: "crates/eval/src/x.rs".to_string(),
                line: 7,
                message: "test".to_string(),
            }],
            layer_counts: {
                let mut m = BTreeMap::new();
                for l in ALL_LAYERS.iter().chain(&["allowlist", "ratchet"]) {
                    m.insert((*l).to_string(), (0, 0));
                }
                m.insert("L2".to_string(), (0, 1));
                m
            },
            errors: 0,
            warnings: 1,
            strict: false,
        };
        let json = report_to_json(&report);
        let summary = validate_report_json(&json).expect("validates");
        assert!(summary.contains("3 file(s)"), "{summary}");
    }

    #[test]
    fn validation_rejects_inconsistent_reports() {
        assert!(validate_report_json("not json").is_err());
        assert!(validate_report_json("{}").is_err());
        let bad_counts = r#"{"tool":"stmaker-xtask-lint","version":2,"strict":false,
            "files_scanned":1,"errors":5,"warnings":0,
            "layers":{"L1":{"errors":0,"warnings":0},"L2":{"errors":0,"warnings":0},
                "L3":{"errors":0,"warnings":0},"L4":{"errors":0,"warnings":0},
                "L5":{"errors":0,"warnings":0},"L6":{"errors":0,"warnings":0},
                "L7":{"errors":0,"warnings":0},"allowlist":{"errors":0,"warnings":0},
                "ratchet":{"errors":0,"warnings":0}},
            "findings":[]}"#;
        let err = validate_report_json(bad_counts).unwrap_err();
        assert!(err.contains("count mismatch"), "{err}");
    }
}
