//! The structured lint allowlist (`lint-allowlist.txt`), v2 format.
//!
//! One entry per line:
//!
//! ```text
//! layer | path-suffix | needle | justification
//! ```
//!
//! `layer` is one of `L1`–`L7`. An entry suppresses findings of that layer
//! in any file whose workspace-relative path ends with `path-suffix` *at a
//! path-component boundary*, on lines whose comment-stripped text contains
//! `needle` (needles therefore never match prose in comments). The
//! justification is mandatory. Entries that stop matching anything are
//! reported as warnings — promoted to errors under `--strict` — so the
//! list cannot rot, and a `path-suffix` that resolves to more than one
//! scanned file is an error so renames cannot silently re-target an
//! exemption.

use std::cell::RefCell;

pub const ALLOWLIST_FILE: &str = "lint-allowlist.txt";

const KNOWN_LAYERS: &[&str] = &["L1", "L2", "L3", "L4", "L5", "L6", "L7"];

/// One parsed allowlist entry.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    pub layer: String,
    pub path_suffix: String,
    pub needle: String,
    pub justification: String,
    /// 1-based line in the allowlist file (for diagnostics).
    pub src_line: usize,
}

#[derive(Debug, Default)]
pub struct Allowlist {
    pub entries: Vec<AllowEntry>,
    used: RefCell<Vec<bool>>,
}

/// Whether `path` ends with `suffix` at a `/` component boundary (or the
/// whole path equals the suffix). `foo/util.rs` matches `a/foo/util.rs`
/// but not `a/not_foo/util.rs`.
pub fn suffix_matches(path: &str, suffix: &str) -> bool {
    path == suffix
        || (path.len() > suffix.len()
            && path.ends_with(suffix)
            && path.as_bytes()[path.len() - suffix.len() - 1] == b'/')
}

impl Allowlist {
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let parts: Vec<&str> = line.splitn(4, '|').map(str::trim).collect();
            let [layer, path_suffix, needle, justification] = parts.as_slice() else {
                return Err(format!(
                    "{ALLOWLIST_FILE}:{}: expected `layer | path-suffix | needle | justification`",
                    i + 1
                ));
            };
            if !KNOWN_LAYERS.contains(layer) {
                return Err(format!(
                    "{ALLOWLIST_FILE}:{}: unknown layer `{layer}` (expected one of {})",
                    i + 1,
                    KNOWN_LAYERS.join(", ")
                ));
            }
            if justification.is_empty() {
                return Err(format!(
                    "{ALLOWLIST_FILE}:{}: entries need a non-empty justification",
                    i + 1
                ));
            }
            if path_suffix.is_empty() || needle.is_empty() {
                return Err(format!(
                    "{ALLOWLIST_FILE}:{}: path-suffix and needle must be non-empty",
                    i + 1
                ));
            }
            entries.push(AllowEntry {
                layer: layer.to_string(),
                path_suffix: path_suffix.to_string(),
                needle: needle.to_string(),
                justification: justification.to_string(),
                src_line: i + 1,
            });
        }
        let used = RefCell::new(vec![false; entries.len()]);
        Ok(Self { entries, used })
    }

    /// Whether `(layer, path, comment-stripped line text)` matches an
    /// entry; marks the entry used.
    pub fn allows(&self, layer: &str, path: &str, code_line: &str) -> bool {
        for (i, e) in self.entries.iter().enumerate() {
            if e.layer == layer
                && suffix_matches(path, &e.path_suffix)
                && code_line.contains(&e.needle)
            {
                self.used.borrow_mut()[i] = true;
                return true;
            }
        }
        false
    }

    /// Entries that never matched a finding.
    pub fn unused(&self) -> Vec<&AllowEntry> {
        let used = self.used.borrow();
        self.entries.iter().enumerate().filter(|(i, _)| !used[*i]).map(|(_, e)| e).collect()
    }

    /// Entries whose `path-suffix` matches more than one scanned file —
    /// ambiguous after a file move, each an error. Returns
    /// `(entry, matching paths)` pairs.
    pub fn ambiguous<'a>(&'a self, scanned_paths: &[String]) -> Vec<(&'a AllowEntry, Vec<String>)> {
        let mut out = Vec::new();
        for e in &self.entries {
            let hits: Vec<String> = scanned_paths
                .iter()
                .filter(|p| suffix_matches(p, &e.path_suffix))
                .cloned()
                .collect();
            if hits.len() > 1 {
                out.push((e, hits));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_v2_entries_and_rejects_malformed() {
        let a = Allowlist::parse(
            "# comment\n\nL2 | crates/demo/src/lib.rs | expect(\"set\") | constructor invariant\n",
        )
        .expect("parses");
        assert_eq!(a.entries.len(), 1);
        assert_eq!(a.entries[0].layer, "L2");
        assert_eq!(a.entries[0].src_line, 3);
        assert!(Allowlist::parse("L2 | a.rs | needle |").is_err(), "empty justification");
        assert!(Allowlist::parse("L2 | a.rs | needle").is_err(), "missing field");
        assert!(Allowlist::parse("L9 | a.rs | needle | why").is_err(), "unknown layer");
        assert!(Allowlist::parse("a.rs | needle | why").is_err(), "v1 three-field format");
    }

    #[test]
    fn allows_matches_layer_path_and_needle() {
        let a = Allowlist::parse("L2 | src/lib.rs | x.expect( | invariant\n").expect("parses");
        assert!(a.allows("L2", "crates/demo/src/lib.rs", "let y = x.expect(\"set\");"));
        assert!(!a.allows("L1", "crates/demo/src/lib.rs", "let y = x.expect(\"set\");"));
        assert!(!a.allows("L2", "crates/demo/src/other.rs", "let y = x.expect(\"set\");"));
        assert!(!a.allows("L2", "crates/demo/src/lib.rs", "let y = x.unwrap();"));
        assert!(a.unused().is_empty());
    }

    #[test]
    fn suffix_matching_respects_component_boundaries() {
        assert!(suffix_matches("crates/a/src/util.rs", "util.rs"));
        assert!(suffix_matches("crates/a/src/util.rs", "src/util.rs"));
        assert!(suffix_matches("util.rs", "util.rs"));
        assert!(!suffix_matches("crates/a/src/my_util.rs", "util.rs"));
        assert!(!suffix_matches("crates/a/srcutil.rs", "src/util.rs"));
    }

    #[test]
    fn ambiguous_suffixes_are_detected() {
        let a = Allowlist::parse("L2 | util.rs | needle | why\n").expect("parses");
        let paths = vec!["crates/a/src/util.rs".to_string(), "crates/b/src/util.rs".to_string()];
        let amb = a.ambiguous(&paths);
        assert_eq!(amb.len(), 1);
        assert_eq!(amb[0].1.len(), 2);
        let unique = a.ambiguous(&paths[..1].to_vec());
        assert!(unique.is_empty());
    }

    #[test]
    fn unused_entries_are_reported() {
        let a = Allowlist::parse("L2 | lib.rs | never_matches | why\n").expect("parses");
        assert!(!a.allows("L2", "crates/demo/src/lib.rs", "let x = 1;"));
        assert_eq!(a.unused().len(), 1);
    }
}
