//! A small hand-rolled Rust lexer for the lint engine.
//!
//! The v1 scanner masked comments and strings byte-for-byte and then ran
//! substring searches over the masked text. That was good enough to stop
//! `panic!` inside a doc comment from firing L2, but it kept two failure
//! modes: markers (`// nan-ok:` etc.) were looked up in the *raw* line, so
//! a string literal containing a marker silently suppressed findings, and
//! every rule re-implemented its own ad-hoc token walking. The lexer fixes
//! both: it tokenizes the source once — line/block comments (nested),
//! string / raw-string / byte-string / char / byte literals, lifetimes,
//! identifiers (including `r#raw` idents), numbers, punctuation — and the
//! layers pattern-match over *code tokens* only, while markers are looked
//! up in *comment tokens* only.
//!
//! Scope: this is a lexer, not a parser. It never interprets macros or
//! types; the layers on top use positional heuristics (documented per
//! layer) and escape hatches (markers / the allowlist) where lexical
//! analysis cannot prove intent.

/// Token classification. Everything that is not whitespace becomes exactly
/// one token; byte offsets are contiguous per token and never split a
/// UTF-8 code point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`for`, `as`, `unwrap`, `r#type`, …).
    Ident,
    /// Lifetime such as `'a` or `'static` (also loop labels).
    Lifetime,
    /// Char literal `'x'`, `'\n'`, `'\u{1F600}'`.
    Char,
    /// Byte literal `b'x'`.
    Byte,
    /// String literal `"…"` (escapes handled).
    Str,
    /// Byte string literal `b"…"`.
    ByteStr,
    /// Raw string literal `r"…"` / `r#"…"#` (any hash depth).
    RawStr,
    /// Raw byte string literal `br"…"` / `br#"…"#`.
    RawByteStr,
    /// Numeric literal (`42`, `0x1F`, `1_000.5e-3`, `1f64`).
    Num,
    /// `// …` comment (includes `///` and `//!` doc comments).
    LineComment,
    /// `/* … */` comment, nesting handled (includes `/** … */`).
    BlockComment,
    /// Any other single character (`.`, `(`, `!`, `?`, `|`, …).
    Punct,
}

impl TokKind {
    /// Whether the token is source *code* (not a comment).
    pub fn is_code(self) -> bool {
        !matches!(self, TokKind::LineComment | TokKind::BlockComment)
    }

    /// Whether the token is a string-ish literal (where lint needles must
    /// never match).
    pub fn is_string_like(self) -> bool {
        matches!(
            self,
            TokKind::Str
                | TokKind::ByteStr
                | TokKind::RawStr
                | TokKind::RawByteStr
                | TokKind::Char
                | TokKind::Byte
        )
    }
}

/// One token: kind plus byte span (`start..end`) and 1-based start line.
#[derive(Debug, Clone, Copy)]
pub struct Tok {
    pub kind: TokKind,
    pub start: usize,
    pub end: usize,
    pub line: usize,
}

/// A fully tokenized source file.
pub struct Lexed<'a> {
    pub src: &'a str,
    pub toks: Vec<Tok>,
    /// Byte offset at which each (1-based) line starts; `line_starts[0]`
    /// is line 1.
    pub line_starts: Vec<usize>,
}

impl<'a> Lexed<'a> {
    /// The source text of token `i`.
    pub fn text(&self, i: usize) -> &'a str {
        let t = self.toks[i];
        &self.src[t.start..t.end]
    }

    /// 1-based line containing byte `offset`.
    pub fn line_of(&self, offset: usize) -> usize {
        self.line_starts.partition_point(|&s| s <= offset)
    }

    /// Number of lines in the file.
    pub fn line_count(&self) -> usize {
        self.line_starts.len()
    }
}

/// Tokenizes `src`. Never panics: malformed input (unterminated strings or
/// comments) degrades to a single token running to end of file.
pub fn lex(src: &str) -> Lexed<'_> {
    let b = src.as_bytes();
    let mut line_starts = vec![0usize];
    for (i, &c) in b.iter().enumerate() {
        if c == b'\n' {
            line_starts.push(i + 1);
        }
    }
    let line_of = |offset: usize| line_starts.partition_point(|&s| s <= offset);

    let mut toks = Vec::new();
    let mut i = 0usize;
    while i < b.len() {
        let c = b[i];
        let start = i;
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        let kind = if c == b'/' && b.get(i + 1) == Some(&b'/') {
            while i < b.len() && b[i] != b'\n' {
                i += 1;
            }
            TokKind::LineComment
        } else if c == b'/' && b.get(i + 1) == Some(&b'*') {
            i = block_comment_end(b, i);
            TokKind::BlockComment
        } else if let Some((end, raw_kind)) = raw_string(b, i) {
            i = end;
            raw_kind
        } else if c == b'b' && b.get(i + 1) == Some(&b'"') {
            i = quoted_end(b, i + 2);
            TokKind::ByteStr
        } else if c == b'b' && b.get(i + 1) == Some(&b'\'') {
            i = char_like_end(b, i + 2);
            TokKind::Byte
        } else if c == b'"' {
            i = quoted_end(b, i + 1);
            TokKind::Str
        } else if c == b'\'' {
            match char_or_lifetime(b, i) {
                CharOrLifetime::Char(end) => {
                    i = end;
                    TokKind::Char
                }
                CharOrLifetime::Lifetime(end) => {
                    i = end;
                    TokKind::Lifetime
                }
            }
        } else if c == b'r' && b.get(i + 1) == Some(&b'#') && is_ident_start(b.get(i + 2).copied())
        {
            // Raw identifier `r#type`.
            i += 2;
            while i < b.len() && is_ident_continue(b[i]) {
                i += 1;
            }
            TokKind::Ident
        } else if c.is_ascii_alphabetic() || c == b'_' {
            while i < b.len() && is_ident_continue(b[i]) {
                i += 1;
            }
            TokKind::Ident
        } else if c.is_ascii_digit() {
            i = number_end(b, i);
            TokKind::Num
        } else {
            // One code point of punctuation (never split UTF-8).
            i += utf8_len(c);
            TokKind::Punct
        };
        toks.push(Tok { kind, start, end: i.min(b.len()), line: line_of(start) });
        debug_assert!(i > start, "lexer must always make progress");
    }
    Lexed { src, toks, line_starts }
}

fn is_ident_start(c: Option<u8>) -> bool {
    matches!(c, Some(c) if c.is_ascii_alphabetic() || c == b'_')
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

fn utf8_len(lead: u8) -> usize {
    match lead {
        0xF0..=0xF7 => 4,
        0xE0..=0xEF => 3,
        0xC0..=0xDF => 2,
        _ => 1,
    }
}

/// End offset of the (possibly nested) block comment starting at `i`.
fn block_comment_end(b: &[u8], mut i: usize) -> usize {
    let mut depth = 0usize;
    while i < b.len() {
        if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
            depth += 1;
            i += 2;
        } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
            depth -= 1;
            i += 2;
            if depth == 0 {
                return i;
            }
        } else {
            i += 1;
        }
    }
    b.len()
}

/// If a raw (byte) string starts at `i`, its end offset and kind.
fn raw_string(b: &[u8], i: usize) -> Option<(usize, TokKind)> {
    let (after_prefix, kind) = match b[i] {
        b'r' => (i + 1, TokKind::RawStr),
        b'b' if b.get(i + 1) == Some(&b'r') => (i + 2, TokKind::RawByteStr),
        _ => return None,
    };
    let mut j = after_prefix;
    let mut hashes = 0usize;
    while b.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if b.get(j) != Some(&b'"') {
        return None; // `r#ident` or plain identifier starting with r/br
    }
    let mut k = j + 1;
    while k < b.len() {
        if b[k] == b'"' {
            let mut h = 0usize;
            let mut m = k + 1;
            while h < hashes && b.get(m) == Some(&b'#') {
                h += 1;
                m += 1;
            }
            if h == hashes {
                return Some((m, kind));
            }
        }
        k += 1;
    }
    Some((b.len(), kind))
}

/// End offset of a `"`-quoted run whose body starts at `i` (escapes skip
/// the next byte).
fn quoted_end(b: &[u8], mut i: usize) -> usize {
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    b.len()
}

/// End offset of a `'`-terminated char-ish body starting at `i` (used for
/// byte literals and escaped char literals).
fn char_like_end(b: &[u8], mut i: usize) -> usize {
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'\'' => return i + 1,
            _ => i += 1,
        }
    }
    b.len()
}

enum CharOrLifetime {
    Char(usize),
    Lifetime(usize),
}

/// Disambiguates `'a'` (char) from `'a` (lifetime) at a `'` in position
/// `i`. Rules: `'\…'` is always a char; `'<ident-run>` is a char iff the
/// run is followed by a closing `'` (single-code-point runs only — `'ab'`
/// is not valid Rust, and a lifetime is never followed by `'`); anything
/// else (`'('`, `' '`, `'é'`) is a char literal.
fn char_or_lifetime(b: &[u8], i: usize) -> CharOrLifetime {
    match b.get(i + 1) {
        // Start the scan AT the backslash so `'\''` consumes the escaped
        // quote instead of terminating on it.
        Some(b'\\') => CharOrLifetime::Char(char_like_end(b, i + 1)),
        Some(&c) if c.is_ascii_alphabetic() || c == b'_' || c.is_ascii_digit() => {
            let mut j = i + 1;
            while j < b.len() && is_ident_continue(b[j]) {
                j += 1;
            }
            if b.get(j) == Some(&b'\'') {
                CharOrLifetime::Char(j + 1)
            } else {
                CharOrLifetime::Lifetime(j)
            }
        }
        Some(&c) => {
            let cp = utf8_len(c);
            if b.get(i + 1 + cp) == Some(&b'\'') {
                CharOrLifetime::Char(i + cp + 2)
            } else {
                // A bare `'` (macro token, malformed source): punctuating
                // it as a 1-byte "lifetime" keeps the lexer total.
                CharOrLifetime::Lifetime(i + 1)
            }
        }
        None => CharOrLifetime::Lifetime(i + 1),
    }
}

/// End offset of a numeric literal starting at `i`. Consumes digit runs,
/// `_` separators, alphanumeric suffixes/radix bodies (`0x1F`, `1f64`),
/// a fractional `.` only when followed by a digit (so `1..3` and tuple
/// access stay punctuated), and exponent signs (`1e-3`).
fn number_end(b: &[u8], mut i: usize) -> usize {
    while i < b.len() {
        let c = b[i];
        if is_ident_continue(c) {
            // Exponent sign: `e`/`E` directly followed by `+`/`-` digit.
            if (c == b'e' || c == b'E')
                && matches!(b.get(i + 1), Some(b'+') | Some(b'-'))
                && b.get(i + 2).is_some_and(u8::is_ascii_digit)
            {
                i += 2;
            }
            i += 1;
        } else if c == b'.' && b.get(i + 1).is_some_and(u8::is_ascii_digit) {
            i += 1;
        } else {
            break;
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, &str)> {
        let lx = lex(src);
        (0..lx.toks.len()).map(|i| (lx.toks[i].kind, lx.text(i))).collect()
    }

    #[test]
    fn idents_puncts_numbers() {
        let k = kinds("let x = a.b_2(3, 0x1F, 1_000.5e-3, 1f64);");
        assert_eq!(k[0], (TokKind::Ident, "let"));
        assert_eq!(k[1], (TokKind::Ident, "x"));
        assert_eq!(k[2], (TokKind::Punct, "="));
        assert_eq!(k[3], (TokKind::Ident, "a"));
        assert_eq!(k[4], (TokKind::Punct, "."));
        assert_eq!(k[5], (TokKind::Ident, "b_2"));
        assert!(k.contains(&(TokKind::Num, "0x1F")));
        assert!(k.contains(&(TokKind::Num, "1_000.5e-3")));
        assert!(k.contains(&(TokKind::Num, "1f64")));
    }

    #[test]
    fn range_and_tuple_access_stay_punctuated() {
        let k = kinds("for i in 1..3 { t.0 }");
        assert!(k.contains(&(TokKind::Num, "1")));
        assert!(k.contains(&(TokKind::Num, "3")));
        assert_eq!(k.iter().filter(|(kd, s)| *kd == TokKind::Punct && *s == ".").count(), 3);
    }

    #[test]
    fn line_and_nested_block_comments() {
        let src = "a // c1 /* not nested\nb /* x /* y */ z */ c /** doc */ d";
        let k = kinds(src);
        assert_eq!(k[0], (TokKind::Ident, "a"));
        assert_eq!(k[1], (TokKind::LineComment, "// c1 /* not nested"));
        assert_eq!(k[2], (TokKind::Ident, "b"));
        assert_eq!(k[3], (TokKind::BlockComment, "/* x /* y */ z */"));
        assert_eq!(k[4], (TokKind::Ident, "c"));
        assert_eq!(k[5], (TokKind::BlockComment, "/** doc */"));
        assert_eq!(k[6], (TokKind::Ident, "d"));
    }

    #[test]
    fn strings_with_escapes_and_raw_strings() {
        let k = kinds(r##"let s = "a \" b"; let r = r#"panic!() "quoted" .unwrap()"#;"##);
        assert!(k.contains(&(TokKind::Str, r#""a \" b""#)));
        assert!(k.contains(&(TokKind::RawStr, r##"r#"panic!() "quoted" .unwrap()"#"##)));
        // Nothing inside the literals leaks out as an Ident.
        assert!(!k.iter().any(|(_, s)| *s == "unwrap" || *s == "panic"));
    }

    #[test]
    fn raw_string_hash_depths_and_byte_strings() {
        let k = kinds(r###"(br"x", b"y\"z", r##"a"# b"##)"###);
        assert!(k.contains(&(TokKind::RawByteStr, r#"br"x""#)));
        assert!(k.contains(&(TokKind::ByteStr, r#"b"y\"z""#)));
        assert!(k.contains(&(TokKind::RawStr, r###"r##"a"# b"##"###)));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let k = kinds(
            r"fn f<'a>(s: &'a str, c: char) { let q = 'x'; let e = '\n'; let quote = '\''; let sp = ' '; let u = '\u{1F600}'; let st: &'static str = s; 'outer: loop { break 'outer; } }",
        );
        assert_eq!(k.iter().filter(|(kd, s)| *kd == TokKind::Lifetime && *s == "'a").count(), 2);
        assert!(k.contains(&(TokKind::Char, "'x'")));
        assert!(k.contains(&(TokKind::Char, r"'\n'")));
        assert!(k.contains(&(TokKind::Char, r"'\''")));
        assert!(k.contains(&(TokKind::Char, "' '")));
        assert!(k.contains(&(TokKind::Char, r"'\u{1F600}'")));
        assert!(k.contains(&(TokKind::Lifetime, "'static")));
        assert_eq!(
            k.iter().filter(|(kd, s)| *kd == TokKind::Lifetime && *s == "'outer").count(),
            2
        );
    }

    #[test]
    fn byte_char_literals_including_escaped_quote() {
        let k = kinds(r"let a = b'x'; let b = b'\''; let c = b'\\';");
        assert!(k.contains(&(TokKind::Byte, "b'x'")));
        assert!(k.contains(&(TokKind::Byte, r"b'\''")));
        assert!(k.contains(&(TokKind::Byte, r"b'\\'")));
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        let k = kinds("let r#type = r#match; let r = 1;");
        assert!(k.contains(&(TokKind::Ident, "r#type")));
        assert!(k.contains(&(TokKind::Ident, "r#match")));
        assert!(k.contains(&(TokKind::Ident, "r")));
    }

    #[test]
    fn identifier_ending_in_r_before_string_is_not_raw() {
        let k = kinds(r#"writer "x""#);
        assert_eq!(k[0], (TokKind::Ident, "writer"));
        assert_eq!(k[1], (TokKind::Str, "\"x\""));
    }

    #[test]
    fn unterminated_forms_run_to_eof_without_panic() {
        for src in ["\"abc", "/* abc", "r#\"abc", "'", "b'x"] {
            let lx = lex(src);
            assert!(!lx.toks.is_empty(), "{src:?}");
            assert_eq!(lx.toks.last().map(|t| t.end), Some(src.len()), "{src:?}");
        }
    }

    #[test]
    fn non_ascii_text_never_splits_code_points() {
        let src = "let s = \"héllo\"; // café ☕\nlet é = 1;"; // é as punct-ish bytes
        let lx = lex(src);
        for i in 0..lx.toks.len() {
            let _ = lx.text(i); // would panic on a split code point
        }
    }

    #[test]
    fn lines_are_attributed_correctly() {
        let src = "a\nb /* multi\nline */ c\nd";
        let lx = lex(src);
        let lines: Vec<(String, usize)> =
            (0..lx.toks.len()).map(|i| (lx.text(i).to_string(), lx.toks[i].line)).collect();
        assert!(lines.contains(&("a".to_string(), 1)));
        assert!(lines.contains(&("b".to_string(), 2)));
        assert!(lines.contains(&("c".to_string(), 3)));
        assert!(lines.contains(&("d".to_string(), 4)));
    }

    #[test]
    fn tokens_cover_all_non_whitespace_bytes_in_order() {
        let src = r##"fn f<'a>() -> u8 { let s = r#"x"#; /* c */ b'\n' } // t"##;
        let lx = lex(src);
        let mut prev_end = 0usize;
        for t in &lx.toks {
            assert!(t.start >= prev_end, "tokens overlap");
            assert!(src[prev_end..t.start].chars().all(char::is_whitespace));
            prev_end = t.end;
        }
        assert!(src[prev_end..].chars().all(char::is_whitespace));
    }
}
