//! L4 — error ergonomics (workspace-wide, cross-file per crate).
//!
//! Every `pub enum *Error` must implement both `Display` and
//! `std::error::Error`, so downstream code can `?` it and log it without
//! crate-specific glue.

use super::{FileCtx, Finding, Severity};
use crate::lexer::TokKind;

pub fn scan(files: &[&FileCtx<'_>], severity: Severity) -> Vec<Finding> {
    let mut enums: Vec<(String, String, usize)> = Vec::new(); // (name, path, line)
    let mut displayed: Vec<String> = Vec::new();
    let mut errored: Vec<String> = Vec::new();
    for ctx in files {
        for ci in 0..ctx.code.len() {
            if ctx.kind(ci) != TokKind::Ident {
                continue;
            }
            if ctx.in_test(ctx.line(ci)) {
                continue;
            }
            match ctx.text(ci) {
                "enum" => {
                    // `pub enum X` or `pub(crate) enum X`; pub(crate) lexes
                    // as pub ( crate ) so look back past the group.
                    let is_pub = (ci >= 1 && ctx.is_ident(ci - 1, "pub"))
                        || (ci >= 4
                            && ctx.is_ident(ci - 4, "pub")
                            && ctx.is_punct(ci - 3, "(")
                            && ctx.is_punct(ci - 1, ")"));
                    if !is_pub {
                        continue;
                    }
                    if ci + 1 < ctx.code.len() && ctx.kind(ci + 1) == TokKind::Ident {
                        let name = ctx.text(ci + 1);
                        if name.ends_with("Error") {
                            enums.push((name.to_string(), ctx.rel.to_string(), ctx.line(ci)));
                        }
                    }
                }
                word @ ("Display" | "Error") => {
                    if ctx.is_ident(ci + 1, "for")
                        && ci + 2 < ctx.code.len()
                        && ctx.kind(ci + 2) == TokKind::Ident
                    {
                        let target = ctx.text(ci + 2).to_string();
                        if word == "Display" {
                            displayed.push(target);
                        } else {
                            errored.push(target);
                        }
                    }
                }
                _ => {}
            }
        }
    }
    let mut findings = Vec::new();
    for (name, path, line) in enums {
        let mut missing = Vec::new();
        if !displayed.contains(&name) {
            missing.push("Display");
        }
        if !errored.contains(&name) {
            missing.push("std::error::Error");
        }
        if !missing.is_empty() {
            findings.push(Finding {
                severity,
                rule: "L4",
                path,
                line,
                message: format!(
                    "public error enum `{name}` does not implement {}",
                    missing.join(" + ")
                ),
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Level;
    use crate::lexer::lex;

    fn run(sources: &[(&str, &str)]) -> Vec<Finding> {
        let lexed: Vec<_> = sources.iter().map(|(_, src)| lex(src)).collect();
        let ctxs: Vec<FileCtx<'_>> = sources
            .iter()
            .zip(&lexed)
            .map(|((rel, _), lx)| FileCtx::new("demo", rel, lx, Level::Workspace, false))
            .collect();
        let refs: Vec<&FileCtx<'_>> = ctxs.iter().collect();
        scan(&refs, Severity::Error)
    }

    #[test]
    fn flags_missing_impls() {
        let f = run(&[(
            "crates/demo/src/lib.rs",
            "pub enum ParseError { Bad }\nimpl std::fmt::Display for ParseError {}\n",
        )]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("std::error::Error"));
    }

    #[test]
    fn passes_complete_error_enums_across_files() {
        let f = run(&[
            ("crates/demo/src/lib.rs", "pub enum IoError { Bad }\n"),
            (
                "crates/demo/src/err.rs",
                "impl fmt::Display for IoError {}\nimpl std::error::Error for IoError {}\n",
            ),
        ]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn ignores_private_and_non_error_enums_and_doc_mentions() {
        let f = run(&[(
            "crates/demo/src/lib.rs",
            "/// A doc comment mentioning pub enum DocError without declaring it.\nenum InternalError { A }\npub enum Mode { A, B }\n",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn pub_crate_error_enums_are_checked() {
        let f = run(&[("crates/demo/src/lib.rs", "pub(crate) enum JoinError { Gone }\n")]);
        assert_eq!(f.len(), 1, "{f:?}");
    }
}
