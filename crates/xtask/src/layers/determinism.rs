//! L5 — determinism (strict crates plus `significance`/`mapmatch`/`geo`).
//!
//! DESIGN §10 promises byte-identical training/batch/serving output at any
//! thread count. The two classic ways to break that promise silently are
//! (a) iterating a `HashMap`/`HashSet` and letting the nondeterministic
//! order reach an output or merge path, and (b) folding wall-clock time
//! into results. This layer flags:
//!
//! * `.iter()` / `.keys()` / `.values()` / `.drain()` / `for … in` over
//!   bindings or fields declared with a hash-container type in the same
//!   file. Where order is provably irrelevant (per-key merges into ordered
//!   containers, reductions through a total order with full tie-breaks),
//!   mark the line `// lint: ordered — <justification>`; the justification
//!   is mandatory.
//! * `RandomState` — hash-seeded iteration order has no place in
//!   determinism-critical crates (the cache uses `FixedState`); no escape
//!   hatch.
//! * `Instant::now` / `SystemTime::now` — wall-clock reads outside the
//!   `obs` crate need `// lint: wallclock — <justification>` (sanctioned
//!   use: measuring a span duration that is *recorded* but never folded
//!   into results).
//!
//! Scope: declaration tracking is per-file and name-based — a lexer cannot
//! do type inference. That overshoots on rare shadowing and undershoots on
//! cross-file fields; both are acceptable for a lint whose escape hatch
//! carries the proof obligation.

use super::{severity_for, FileCtx, Finding, Level};
use crate::lexer::TokKind;
use std::collections::BTreeSet;

/// Non-strict crates that still carry the determinism contract: HITS
/// significance feeds summary scores, map-matching feeds calibration.
const EXTRA_CRATES: &[&str] = &["significance", "mapmatch", "geo"];

/// Crates where L5 applies at the crate's own severity.
pub fn applies(crate_key: &str, level: Level) -> bool {
    level == Level::Strict || level == Level::Report || EXTRA_CRATES.contains(&crate_key)
}

const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

pub fn scan(ctx: &FileCtx<'_>) -> Vec<Finding> {
    let mut findings = Vec::new();
    if !applies(ctx.crate_key, ctx.level) {
        return findings;
    }
    let severity = severity_for(ctx.level);
    let hash_names = hash_bindings(ctx);
    let mut push = |rule_line: usize, message: String| {
        findings.push(Finding {
            severity,
            rule: "L5",
            path: ctx.rel.to_string(),
            line: rule_line,
            message,
        });
    };

    for ci in 0..ctx.code.len() {
        let line = ctx.line(ci);
        if ctx.in_test(line) || ctx.kind(ci) != TokKind::Ident {
            continue;
        }
        match ctx.text(ci) {
            // (a) `name.iter()` etc. where `name` is hash-declared.
            m if ITER_METHODS.contains(&m)
                && ci >= 2
                && ctx.is_punct(ci - 1, ".")
                && ctx.is_punct(ci + 1, "(")
                && ctx.kind(ci - 2) == TokKind::Ident
                && hash_names.contains(ctx.text(ci - 2)) =>
            {
                if !ctx.has_justified_marker(line, "lint: ordered") {
                    push(
                        line,
                        format!(
                            "`{}.{m}()` iterates a hash container; order can leak into \
                             output/merge paths — use an ordered container or justify with \
                             `// lint: ordered — <why order is irrelevant>`",
                            ctx.text(ci - 2)
                        ),
                    );
                }
            }
            // (a') `for pat in expr {` where expr mentions a hash binding.
            "for" => {
                let Some(in_ci) = find_for_in(ctx, ci) else { continue };
                let mut j = in_ci + 1;
                let mut depth = 0i32;
                let mut culprit: Option<&str> = None;
                while j < ctx.code.len() {
                    if ctx.kind(j) == TokKind::Punct {
                        match ctx.text(j) {
                            "(" | "[" => depth += 1,
                            ")" | "]" => depth -= 1,
                            "{" if depth == 0 => break,
                            _ => {}
                        }
                    } else if ctx.kind(j) == TokKind::Ident && hash_names.contains(ctx.text(j)) {
                        // A later `.method()` on the binding is handled by
                        // rule (a); only flag the bare `for x in &map` form
                        // where no iter-method token follows the name.
                        let followed_by_call = ctx.is_punct(j + 1, ".")
                            && j + 2 < ctx.code.len()
                            && ITER_METHODS.contains(&ctx.text(j + 2));
                        if !followed_by_call {
                            culprit = Some(ctx.text(j));
                        }
                    }
                    j += 1;
                }
                if let Some(name) = culprit {
                    if !ctx.has_justified_marker(line, "lint: ordered") {
                        push(
                            line,
                            format!(
                                "`for … in` over hash container `{name}`; order can leak into \
                                 output/merge paths — use an ordered container or justify with \
                                 `// lint: ordered — <why order is irrelevant>`"
                            ),
                        );
                    }
                }
            }
            // (b) RandomState — hard error, no marker.
            "RandomState" => {
                push(
                    line,
                    "`RandomState` (seeded hash order) in a determinism-critical crate; \
                     use `FixedState` / an ordered container"
                        .to_string(),
                );
            }
            // (c) wall-clock reads.
            t @ ("Instant" | "SystemTime")
                if ctx.crate_key != "obs"
                    && ctx.is_punct(ci + 1, ":")
                    && ctx.is_punct(ci + 2, ":")
                    && ctx.is_ident(ci + 3, "now") =>
            {
                if !ctx.has_justified_marker(line, "lint: wallclock") {
                    push(
                        line,
                        format!(
                            "`{t}::now()` in a determinism-critical crate; time must never \
                             reach results — record via obs or justify with \
                             `// lint: wallclock — <why time stays out of outputs>`"
                        ),
                    );
                }
            }
            _ => {}
        }
    }
    findings
}

/// Identifiers declared in this file with a hash-container type: struct
/// fields / params / lets with a `name: HashMap<…>` annotation, and
/// `let name = HashMap::new()`-style initializers.
fn hash_bindings<'a>(ctx: &FileCtx<'a>) -> BTreeSet<&'a str> {
    let mut names = BTreeSet::new();
    for ci in 0..ctx.code.len() {
        if ctx.kind(ci) != TokKind::Ident {
            continue;
        }
        // `name : … HashMap …` up to a depth-0 terminator.
        if ctx.is_punct(ci + 1, ":")
            && !ctx.is_punct(ci + 2, ":")
            && !(ci >= 1 && ctx.is_punct(ci - 1, ":"))
        {
            let mut angle = 0i32;
            let mut paren = 0i32;
            let mut j = ci + 2;
            while j < ctx.code.len() {
                match (ctx.kind(j), ctx.text(j)) {
                    (TokKind::Punct, "<") => angle += 1,
                    (TokKind::Punct, ">") => angle -= 1,
                    (TokKind::Punct, "(" | "[" | "{") => paren += 1,
                    (TokKind::Punct, ")" | "]" | "}") if paren > 0 => paren -= 1,
                    (TokKind::Punct, ")" | "]" | "}" | ";" | "=" | ",") => break,
                    (TokKind::Ident, t) if HASH_TYPES.contains(&t) => {
                        names.insert(ctx.text(ci));
                        break;
                    }
                    _ => {}
                }
                if angle < 0 {
                    break;
                }
                j += 1;
            }
        }
        // `let [mut] name = HashMap::new()` / `HashSet::with_capacity(…)`.
        if ctx.is_ident(ci, "let") {
            let name_ci = if ctx.is_ident(ci + 1, "mut") { ci + 2 } else { ci + 1 };
            if name_ci + 1 < ctx.code.len()
                && ctx.kind(name_ci) == TokKind::Ident
                && ctx.is_punct(name_ci + 1, "=")
                && name_ci + 2 < ctx.code.len()
                && HASH_TYPES.contains(&ctx.text(name_ci + 2))
            {
                names.insert(ctx.text(name_ci));
            }
        }
    }
    names
}

/// The code index of the `in` keyword of a `for` loop header at `ci`.
fn find_for_in(ctx: &FileCtx<'_>, for_ci: usize) -> Option<usize> {
    let mut depth = 0i32;
    for j in for_ci + 1..ctx.code.len().min(for_ci + 64) {
        match (ctx.kind(j), ctx.text(j)) {
            (TokKind::Punct, "(" | "[") => depth += 1,
            (TokKind::Punct, ")" | "]") => depth -= 1,
            (TokKind::Punct, "{") => return None, // `for` without `in` (macro?)
            (TokKind::Ident, "in") if depth == 0 => return Some(j),
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run_in(crate_key: &'static str, level: Level, src: &str) -> Vec<Finding> {
        let lx = lex(src);
        let ctx = FileCtx::new(crate_key, "crates/x/src/lib.rs", &lx, level, false);
        scan(&ctx)
    }

    fn run(src: &str) -> Vec<Finding> {
        run_in("core", Level::Strict, src)
    }

    #[test]
    fn flags_iter_over_declared_hashmap() {
        let src = "use std::collections::HashMap;\npub fn f(m: &HashMap<u32, u32>) -> u32 {\n    m.iter().map(|(_, v)| *v).sum()\n}\n";
        let f = run(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "L5");
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn flags_for_in_over_hash_field() {
        let src = "use std::collections::HashMap;\nstruct P { pairs: HashMap<u32, u32> }\npub fn f(p: &P) -> u32 {\n    let mut s = 0;\n    for (_, v) in &p.pairs {\n        s += v;\n    }\n    s\n}\n";
        let f = run(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 5);
    }

    #[test]
    fn flags_keys_values_drain_and_let_initializer_bindings() {
        let src = "use std::collections::{HashMap, HashSet};\npub fn f() -> usize {\n    let mut m = HashMap::new();\n    m.insert(1u32, 2u32);\n    let s: HashSet<u32> = HashSet::new();\n    m.keys().count() + m.values().count() + s.iter().count()\n}\n";
        let f = run(src);
        assert_eq!(f.len(), 3, "{f:?}");
    }

    #[test]
    fn ordered_marker_with_justification_suppresses() {
        let src = "use std::collections::HashMap;\npub fn f(m: &HashMap<u32, u32>) -> u32 {\n    // lint: ordered — per-key sum is commutative\n    m.values().sum()\n}\n";
        assert!(run(src).is_empty());
        // A bare marker without justification does not.
        let bare = "use std::collections::HashMap;\npub fn f(m: &HashMap<u32, u32>) -> u32 {\n    // lint: ordered\n    m.values().sum()\n}\n";
        assert_eq!(run(bare).len(), 1);
    }

    #[test]
    fn btreemap_iteration_is_fine_and_probes_are_fine() {
        let src = "use std::collections::{BTreeMap, HashMap};\npub fn f(b: &BTreeMap<u32, u32>, h: &HashMap<u32, u32>) -> u32 {\n    let probe = h.get(&1).copied().unwrap_or(0);\n    b.iter().map(|(_, v)| *v).sum::<u32>() + probe\n}\n";
        assert!(run(src).is_empty(), "probing and ordered iteration must pass");
    }

    #[test]
    fn random_state_is_flagged_without_escape() {
        let src = "use std::collections::hash_map::RandomState;\npub fn f() { let _s = RandomState::new(); }\n";
        let f = run(src);
        assert!(!f.is_empty(), "{f:?}");
        assert!(f[0].message.contains("RandomState"));
    }

    #[test]
    fn wallclock_needs_justified_marker() {
        let src = "use std::time::Instant;\npub fn f() -> u64 {\n    let t = Instant::now();\n    t.elapsed().as_nanos() as u64\n}\n";
        let f = run(src);
        assert_eq!(f.len(), 1, "{f:?}");
        let ok = "use std::time::Instant;\npub fn f() -> std::time::Duration {\n    // lint: wallclock — duration is recorded via obs, never folded into results\n    let t = Instant::now();\n    t.elapsed()\n}\n";
        assert!(run_in("core", Level::Strict, ok).is_empty());
    }

    #[test]
    fn scope_is_strict_plus_extra_crates() {
        let src = "use std::collections::HashMap;\npub fn f(m: &HashMap<u32, u32>) -> u32 { m.values().sum() }\n";
        assert_eq!(run_in("significance", Level::Workspace, src).len(), 1);
        assert_eq!(run_in("mapmatch", Level::Workspace, src).len(), 1);
        assert!(
            run_in("textmine", Level::Workspace, src).is_empty(),
            "plain workspace crates skip L5"
        );
        let report = run_in("eval", Level::Report, src);
        assert_eq!(report.len(), 1);
        assert_eq!(report[0].severity, crate::layers::Severity::Warning);
    }

    #[test]
    fn cfg_test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    fn t(m: &HashMap<u32, u32>) -> u32 { m.values().sum() }\n}\n";
        assert!(run(src).is_empty());
    }
}
