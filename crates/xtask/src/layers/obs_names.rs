//! L7 — counter/gauge/span name hygiene (workspace-wide).
//!
//! Every metric name literal passed to the obs recorder (`.add(name, n)`,
//! `.gauge(name, v)`, `.observe_ms(name, ms)`, `.span(name)`,
//! `.span_observed(name, d)`) must
//!
//! 1. match the dotted schema — counters/gauges/histograms need at least
//!    two `[a-z0-9_]` segments (`cache.hits`), span names allow a single
//!    segment (`partition`) since pipeline stages are one word;
//! 2. appear in DESIGN.md's instrumentation tables, cross-referenced at
//!    lint time — a renamed counter that nobody documented is silent
//!    metric drift, and CI schema checks keyed on the old name stop
//!    protecting anything.
//!
//! Names built at runtime (`format!("{prefix}.hits")`) are skipped — the
//! registry covers them via their documented prefix families.

use super::{severity_for, FileCtx, Finding};
use crate::lexer::TokKind;
use std::collections::BTreeSet;

/// Recorder methods whose first argument is a metric name.
const NAME_METHODS: &[&str] =
    &["add", "gauge", "observe_ms", "span", "span_observed", "instant", "replay_span"];

/// The documented instrumentation registry, parsed out of DESIGN.md.
#[derive(Debug, Default)]
pub struct ObsRegistry {
    pub names: BTreeSet<String>,
    /// Whether a registry was found at all; when absent the membership
    /// check is skipped (schema checks still run) and the engine emits a
    /// standalone warning.
    pub present: bool,
}

impl ObsRegistry {
    /// Extracts backticked dotted names from markdown table rows:
    /// any `` | `name` | `` cell whose content matches `[a-z0-9_.]+`.
    pub fn from_markdown(text: &str) -> Self {
        let mut names = BTreeSet::new();
        let mut present = false;
        for line in text.lines() {
            let t = line.trim();
            if !t.starts_with('|') {
                continue;
            }
            for cell in t.split('|') {
                let cell = cell.trim();
                let Some(inner) = cell.strip_prefix('`').and_then(|c| c.strip_suffix('`')) else {
                    continue;
                };
                if !inner.is_empty()
                    && inner.chars().all(|c| {
                        c.is_ascii_lowercase()
                            || c.is_ascii_digit()
                            || c == '_'
                            || c == '.'
                            || c == '*'
                    })
                {
                    present = true;
                    names.insert(inner.to_string());
                }
            }
        }
        Self { names, present }
    }

    /// Whether `name` is documented, either directly or through a
    /// registered `prefix.*` family.
    pub fn contains(&self, name: &str) -> bool {
        if self.names.contains(name) {
            return true;
        }
        self.names.iter().any(|n| {
            n.strip_suffix(".*").is_some_and(|prefix| {
                name.strip_prefix(prefix).is_some_and(|rest| rest.starts_with('.'))
            })
        })
    }
}

fn segments_ok(name: &str, min_segments: usize) -> bool {
    let segs: Vec<&str> = name.split('.').collect();
    segs.len() >= min_segments
        && segs.iter().all(|s| {
            !s.is_empty()
                && s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        })
}

pub fn scan(ctx: &FileCtx<'_>, registry: &ObsRegistry) -> Vec<Finding> {
    let mut findings = Vec::new();
    let severity = severity_for(ctx.level);
    for ci in 0..ctx.code.len() {
        if ctx.kind(ci) != TokKind::Ident || !NAME_METHODS.contains(&ctx.text(ci)) {
            continue;
        }
        // Method position with a string-literal first argument:
        // `.method("name"…`.
        if ci == 0 || !ctx.is_punct(ci - 1, ".") || !ctx.is_punct(ci + 1, "(") {
            continue;
        }
        let arg = ci + 2;
        if arg >= ctx.code.len() || ctx.kind(arg) != TokKind::Str {
            continue; // runtime-built or non-string name: out of scope
        }
        let line = ctx.line(ci);
        if ctx.in_test(line) {
            continue;
        }
        let raw = ctx.text(arg);
        let name = raw.trim_matches('"');
        if name.contains('\\') {
            continue; // escapes: not a plain metric name literal
        }
        let method = ctx.text(ci);
        let min_segments =
            if matches!(method, "span" | "span_observed" | "replay_span") { 1 } else { 2 };
        if !segments_ok(name, min_segments) {
            findings.push(Finding {
                severity,
                rule: "L7",
                path: ctx.rel.to_string(),
                line,
                message: format!(
                    "obs name `{name}` (via `.{method}`) violates the dotted \
                     `[a-z0-9_]` schema{}",
                    if min_segments == 2 { " (counters/gauges need ≥ 2 segments)" } else { "" }
                ),
            });
            continue;
        }
        if registry.present && !registry.contains(name) {
            findings.push(Finding {
                severity,
                rule: "L7",
                path: ctx.rel.to_string(),
                line,
                message: format!(
                    "obs name `{name}` (via `.{method}`) is not in DESIGN.md's \
                     instrumentation tables — document it or fix the drift"
                ),
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Level;
    use crate::lexer::lex;

    fn registry() -> ObsRegistry {
        ObsRegistry::from_markdown(
            "| name | meaning |\n|---|---|\n| `cache.hits` | cache hits |\n| `partition` | span |\n| `bench.*` | bench gauges |\n",
        )
    }

    fn run(src: &str) -> Vec<Finding> {
        let lx = lex(src);
        let ctx = FileCtx::new("core", "crates/core/src/lib.rs", &lx, Level::Strict, false);
        scan(&ctx, &registry())
    }

    #[test]
    fn documented_dotted_names_pass() {
        let src = "pub fn f(rec: &Recorder) {\n    rec.add(\"cache.hits\", 1);\n    let _g = rec.span(\"partition\");\n    rec.gauge(\"bench.serve.speedup\", 2.0);\n}\n";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn single_segment_counter_violates_schema() {
        let src = "pub fn f(rec: &Recorder) { rec.add(\"hits\", 1); }\n";
        let f = run(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("schema"));
    }

    #[test]
    fn uppercase_and_bad_chars_violate_schema() {
        for bad in ["Cache.Hits", "cache..hits", "cache.hits-total", ".hits", "cache."] {
            let src = format!("pub fn f(rec: &Recorder) {{ rec.add(\"{bad}\", 1); }}\n");
            let f = run(&src);
            assert_eq!(f.len(), 1, "{bad}: {f:?}");
        }
    }

    #[test]
    fn undocumented_name_is_drift() {
        let src = "pub fn f(rec: &Recorder) { rec.add(\"cache.miss_total\", 1); }\n";
        let f = run(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("instrumentation tables"));
    }

    #[test]
    fn prefix_families_cover_members() {
        let src = "pub fn f(rec: &Recorder) { rec.gauge(\"bench.cache.warm_hit_rate\", 0.9); }\n";
        assert!(run(src).is_empty());
        // The bare prefix itself is not covered by the family.
        let src2 = "pub fn f(rec: &Recorder) { rec.gauge(\"bench\", 0.9); }\n";
        assert_eq!(run(src2).len(), 1);
    }

    #[test]
    fn runtime_built_names_and_test_code_are_skipped() {
        let src = "pub fn f(rec: &Recorder, prefix: &str) {\n    rec.add(&format!(\"{prefix}.hits\"), 1);\n}\n#[cfg(test)]\nmod tests {\n    fn t(rec: &Recorder) { rec.add(\"c\", 1); }\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn missing_registry_skips_membership_but_keeps_schema() {
        let empty = ObsRegistry::from_markdown("no tables here");
        assert!(!empty.present);
        let src = "pub fn f(rec: &Recorder) {\n    rec.add(\"totally.unknown\", 1);\n    rec.add(\"bad\", 1);\n}\n";
        let lx = lex(src);
        let ctx = FileCtx::new("core", "crates/core/src/lib.rs", &lx, Level::Strict, false);
        let f = scan(&ctx, &empty);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("schema"));
    }

    #[test]
    fn registry_parses_markdown_tables() {
        let r = registry();
        assert!(r.present);
        assert!(r.contains("cache.hits"));
        assert!(r.contains("partition"));
        assert!(r.contains("bench.anything.goes"));
        assert!(!r.contains("cache.misses"));
    }
}
