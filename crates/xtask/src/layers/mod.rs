//! The lint layer catalog (L1–L7) and the per-file context they share.
//!
//! Each layer is a function from a [`FileCtx`] (or, for the cross-file L4,
//! a slice of them) to findings. Layers match over *code tokens* produced
//! by [`crate::lexer`]; markers (`// nan-ok:`, `// cast-ok:`,
//! `// lint: ordered — …`, `// lint: wallclock — …`, `// lint: lock-ok — …`)
//! are looked up in *comment tokens* only, so a marker spelled inside a
//! string literal can never suppress a finding. See DESIGN.md §13 for the
//! catalog and semantics.

pub mod casts;
pub mod determinism;
pub mod errors;
pub mod locks;
pub mod nan;
pub mod obs_names;
pub mod panics;

use crate::lexer::{Lexed, Tok, TokKind};
use std::fmt;

/// How findings in a crate are reported.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// All rules, all errors (the paper-critical crates).
    Strict,
    /// L1 + L4 + L7 as errors; L2/L3/L5/L6 not applied (supporting crates).
    Workspace,
    /// All rules, downgraded to warnings (eval/bench/xtask/suite/examples).
    Report,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    Error,
    Warning,
}

#[derive(Debug, Clone)]
pub struct Finding {
    pub severity: Severity,
    pub rule: &'static str,
    pub path: String,
    pub line: usize,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        write!(f, "{sev}[{}]: {}:{}: {}", self.rule, self.path, self.line, self.message)
    }
}

/// Everything the layers need to know about one source file.
pub struct FileCtx<'a> {
    /// Crate key (`core`, `routes`, …; `__root__` / `__examples__` /
    /// `__experiments__` for the synthetic groups).
    pub crate_key: &'a str,
    /// Workspace-relative path with `/` separators.
    pub rel: &'a str,
    /// The tokenized source.
    pub lx: &'a Lexed<'a>,
    /// Indices into `lx.toks` of code (non-comment) tokens.
    pub code: Vec<usize>,
    /// 1-based line → line belongs to a `#[cfg(test)]` item.
    pub is_test: Vec<bool>,
    /// 1-based line → concatenated comment text on that line.
    pub comments: Vec<String>,
    /// 1-based line → original line text with comments blanked (what
    /// allowlist needles match against).
    pub code_lines: Vec<String>,
    pub level: Level,
    /// Whether the file is on the L3 DP hot-path list.
    pub hot: bool,
}

impl<'a> FileCtx<'a> {
    pub fn new(
        crate_key: &'a str,
        rel: &'a str,
        lx: &'a Lexed<'a>,
        level: Level,
        hot: bool,
    ) -> Self {
        let code: Vec<usize> = (0..lx.toks.len()).filter(|&i| lx.toks[i].kind.is_code()).collect();
        let n_lines = lx.line_count();
        let mut comments = vec![String::new(); n_lines + 2];
        let mut code_src = lx.src.as_bytes().to_vec();
        for t in &lx.toks {
            if t.kind.is_code() {
                continue;
            }
            // Attribute each physical line of the comment to its own slot
            // so markers inside multi-line block comments resolve, and
            // blank the comment out of the code-line text.
            for (k, piece) in lx.src[t.start..t.end].split('\n').enumerate() {
                if let Some(slot) = comments.get_mut(t.line + k) {
                    if !slot.is_empty() {
                        slot.push(' ');
                    }
                    slot.push_str(piece);
                }
            }
            for byte in code_src.iter_mut().take(t.end).skip(t.start) {
                if *byte != b'\n' {
                    *byte = b' ';
                }
            }
        }
        let code_text = String::from_utf8_lossy(&code_src).into_owned();
        let mut code_lines: Vec<String> = code_text.lines().map(str::to_string).collect();
        code_lines.insert(0, String::new()); // 1-based indexing
        let is_test = test_line_mask(lx, &code);
        Self { crate_key, rel, lx, code, is_test, comments, code_lines, level, hot }
    }

    /// The token behind code index `ci`.
    pub fn tok(&self, ci: usize) -> Tok {
        self.lx.toks[self.code[ci]]
    }

    /// Source text of code token `ci`.
    pub fn text(&self, ci: usize) -> &'a str {
        self.lx.text(self.code[ci])
    }

    pub fn kind(&self, ci: usize) -> TokKind {
        self.tok(ci).kind
    }

    pub fn line(&self, ci: usize) -> usize {
        self.tok(ci).line
    }

    /// Whether code token `ci` is an identifier with this exact text.
    pub fn is_ident(&self, ci: usize, word: &str) -> bool {
        ci < self.code.len() && self.kind(ci) == TokKind::Ident && self.text(ci) == word
    }

    /// Whether code token `ci` is this exact punctuation.
    pub fn is_punct(&self, ci: usize, p: &str) -> bool {
        ci < self.code.len() && self.kind(ci) == TokKind::Punct && self.text(ci) == p
    }

    pub fn in_test(&self, line: usize) -> bool {
        self.is_test.get(line).copied().unwrap_or(false)
    }

    /// Code index of the `)` matching the `(` at code index `open`.
    pub fn close_paren(&self, open: usize) -> Option<usize> {
        let mut depth = 0usize;
        for ci in open..self.code.len() {
            if self.is_punct(ci, "(") {
                depth += 1;
            } else if self.is_punct(ci, ")") {
                depth -= 1;
                if depth == 0 {
                    return Some(ci);
                }
            }
        }
        None
    }

    /// Whether `line` (or the line above) carries `marker` in a comment.
    /// Markers in strings/code never match — comments only.
    pub fn has_marker(&self, line: usize, marker: &str) -> bool {
        self.comment_on(line).contains(marker)
            || (line > 1 && self.comment_on(line - 1).contains(marker))
    }

    /// Whether `line` (or the line above) carries `marker` followed by a
    /// non-empty justification (separators `—`, `-`, `:` are skipped).
    pub fn has_justified_marker(&self, line: usize, marker: &str) -> bool {
        let justified = |text: &str| {
            text.find(marker).is_some_and(|at| {
                let rest = text[at + marker.len()..]
                    .trim_start_matches([' ', '\t', '—', '-', ':', '–'])
                    .trim();
                !rest.is_empty()
            })
        };
        justified(self.comment_on(line)) || (line > 1 && justified(self.comment_on(line - 1)))
    }

    fn comment_on(&self, line: usize) -> &str {
        self.comments.get(line).map_or("", String::as_str)
    }

    /// The comment-stripped text of `line` (for allowlist needle matching).
    pub fn code_line(&self, line: usize) -> &str {
        self.code_lines.get(line).map_or("", String::as_str)
    }
}

/// Finding severity for a crate level.
pub fn severity_for(level: Level) -> Severity {
    match level {
        Level::Report => Severity::Warning,
        _ => Severity::Error,
    }
}

/// Marks every line belonging to a `#[cfg(test)]` item (attribute line
/// through the item's closing brace or trailing semicolon). Token-based:
/// braces inside strings or comments can no longer confuse the matcher.
fn test_line_mask(lx: &Lexed<'_>, code: &[usize]) -> Vec<bool> {
    let mut is_test = vec![false; lx.line_count() + 2];
    let tokens_match = |ci: usize, pat: &[&str]| -> bool {
        pat.iter()
            .enumerate()
            .all(|(k, want)| code.get(ci + k).is_some_and(|&ti| lx.text(ti) == *want))
    };
    let mut ci = 0usize;
    while ci < code.len() {
        if !tokens_match(ci, &["#", "[", "cfg", "(", "test", ")", "]"]) {
            ci += 1;
            continue;
        }
        let attr_line = lx.toks[code[ci]].line;
        // Find the item's body: first `{` or `;` after the attribute.
        let mut j = ci + 7;
        while j < code.len() {
            let t = lx.toks[code[j]];
            if t.kind == TokKind::Punct {
                let s = lx.text(code[j]);
                if s == "{" || s == ";" {
                    break;
                }
            }
            j += 1;
        }
        let end = if j < code.len() && lx.text(code[j]) == "{" {
            let mut depth = 0usize;
            let mut k = j;
            loop {
                if k >= code.len() {
                    break k.saturating_sub(1);
                }
                let s = lx.text(code[k]);
                if lx.toks[code[k]].kind == TokKind::Punct {
                    if s == "{" {
                        depth += 1;
                    } else if s == "}" {
                        depth -= 1;
                        if depth == 0 {
                            break k;
                        }
                    }
                }
                k += 1;
            }
        } else {
            j.min(code.len().saturating_sub(1))
        };
        let last_line = code.get(end).map_or(attr_line, |&ti| lx.toks[ti].line);
        for line in attr_line..=last_line {
            if line < is_test.len() {
                is_test[line] = true;
            }
        }
        ci = end.max(ci) + 1;
    }
    is_test
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn ctx<'a>(lx: &'a Lexed<'a>) -> FileCtx<'a> {
        FileCtx::new("demo", "crates/demo/src/lib.rs", lx, Level::Strict, false)
    }

    #[test]
    fn cfg_test_mod_lines_are_masked() {
        let src = "pub fn ok() {}\n#[cfg(test)]\nmod tests {\n    fn t() { panic!(\"x\") }\n}\npub fn after() {}\n";
        let lx = lex(src);
        let c = ctx(&lx);
        assert!(!c.in_test(1));
        assert!(c.in_test(2));
        assert!(c.in_test(4));
        assert!(c.in_test(5));
        assert!(!c.in_test(6));
    }

    #[test]
    fn braces_in_strings_do_not_break_test_mask() {
        let src = "#[cfg(test)]\nmod tests {\n    const S: &str = \"}}}\";\n    fn t() {}\n}\npub fn after() { let _ = 1; }\n";
        let lx = lex(src);
        let c = ctx(&lx);
        assert!(c.in_test(4), "string braces must not close the mod early");
        assert!(!c.in_test(6));
    }

    #[test]
    fn markers_in_strings_never_match() {
        let src = "fn f() {\n    let s = \"// nan-ok: not a real marker\";\n    let _ = s;\n}\n";
        let lx = lex(src);
        let c = ctx(&lx);
        assert!(!c.has_marker(2, "nan-ok:"), "marker inside a string literal must not count");
        assert!(!c.has_marker(3, "nan-ok:"));
    }

    #[test]
    fn markers_in_comments_match_same_and_previous_line() {
        let src = "fn f() {\n    // nan-ok: validated finite\n    let _ = 1;\n}\n";
        let lx = lex(src);
        let c = ctx(&lx);
        assert!(c.has_marker(2, "nan-ok:"));
        assert!(c.has_marker(3, "nan-ok:"));
        assert!(!c.has_marker(4, "nan-ok:"));
    }

    #[test]
    fn justified_marker_requires_text_after_separator() {
        let src = "fn f() {\n    // lint: ordered\n    let _ = 1;\n    // lint: ordered — per-key merge is commutative\n    let _ = 2;\n}\n";
        let lx = lex(src);
        let c = ctx(&lx);
        assert!(!c.has_justified_marker(3, "lint: ordered"), "bare marker has no justification");
        assert!(c.has_justified_marker(5, "lint: ordered"));
    }

    #[test]
    fn code_line_strips_comments_but_keeps_strings() {
        let src = "fn f() {\n    g(\"needle\"); // trailing comment with needle2\n}\n";
        let lx = lex(src);
        let c = ctx(&lx);
        assert!(c.code_line(2).contains("needle"));
        assert!(!c.code_line(2).contains("needle2"));
    }

    #[test]
    fn multiline_block_comment_markers_resolve_per_line() {
        let src = "fn f() {\n    /* spanning\n       cast-ok: inner line */\n    let _ = 1;\n}\n";
        let lx = lex(src);
        let c = ctx(&lx);
        assert!(c.has_marker(3, "cast-ok:"));
        assert!(c.has_marker(4, "cast-ok:"), "previous-line lookup sees the block tail");
    }
}
