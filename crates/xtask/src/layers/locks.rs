//! L6 — lock discipline (`cache` / `exec` / `core` / `obs` / `geo`).
//!
//! The cache's contract is that values are computed *outside* the shard
//! lock (`get_or_insert_with` drops the guard before calling the closure),
//! and the executor/obs layers hold their mutexes for O(1) critical
//! sections. Three shapes break that discipline, all detectable
//! statement-locally:
//!
//! * **nested-lock** — two `.lock(` / `::lock(` acquisitions in one
//!   statement: lock-order inversion risk, and the inner acquisition runs
//!   under the outer guard.
//! * **guard-across-closure** — a lock acquired and then a
//!   closure-taking method (`or_insert_with`, `unwrap_or_else`, …) called
//!   later in the same statement: the closure (arbitrary user code) runs
//!   while the guard is held.
//! * **guard-across-exit** — a `let` statement that acquires a lock and
//!   also contains `?` / `return`: the guard (or a `PoisonError` carrying
//!   it) crosses an early exit.
//!
//! Escape hatch: `// lint: lock-ok — <justification>`. A statement is the
//! token run between `;`, `{`, or `}` — coarse, but locks in these crates
//! are all helper-mediated one-liners, and the coarseness only ever
//! over-flags (the marker carries the proof).

use super::{severity_for, FileCtx, Finding, Level};
use crate::lexer::TokKind;

/// Crates subject to L6 (all hold or wrap locks, except `geo`, which is
/// kept in the lane so a lock can never creep into the hot spatial index).
const LOCK_CRATES: &[&str] = &["cache", "exec", "core", "obs", "geo", "server"];

/// Methods that take a closure and run it inline on the receiver chain.
const CLOSURE_TAKERS: &[&str] =
    &["or_insert_with", "get_or_insert_with", "unwrap_or_else", "or_else", "map_or_else"];

pub fn applies(crate_key: &str, level: Level) -> bool {
    LOCK_CRATES.contains(&crate_key) || level == Level::Report
}

pub fn scan(ctx: &FileCtx<'_>) -> Vec<Finding> {
    let mut findings = Vec::new();
    if !applies(ctx.crate_key, ctx.level) {
        return findings;
    }
    let severity = severity_for(ctx.level);

    // Statement boundaries: token runs split on `;` / `{` / `}`.
    let mut stmt_start = 0usize;
    for ci in 0..=ctx.code.len() {
        let is_boundary = ci == ctx.code.len()
            || (ctx.kind(ci) == TokKind::Punct && matches!(ctx.text(ci), ";" | "{" | "}"));
        if !is_boundary {
            continue;
        }
        let stmt = stmt_start..ci;
        stmt_start = ci + 1;
        if stmt.is_empty() {
            continue;
        }

        // Lock-call positions within the statement.
        let locks: Vec<usize> = stmt
            .clone()
            .filter(|&j| {
                ctx.is_ident(j, "lock")
                    && ctx.is_punct(j + 1, "(")
                    && j >= 1
                    && (ctx.is_punct(j - 1, ".")
                        || (j >= 2 && ctx.is_punct(j - 1, ":") && ctx.is_punct(j - 2, ":")))
            })
            .collect();
        let Some(&first_lock) = locks.first() else { continue };
        let line = ctx.line(first_lock);
        if ctx.in_test(line) {
            continue;
        }
        let mut push = |at: usize, what: &str, detail: String| {
            let l = ctx.line(at);
            if !ctx.has_justified_marker(l, "lint: lock-ok") {
                findings.push(Finding {
                    severity,
                    rule: "L6",
                    path: ctx.rel.to_string(),
                    line: l,
                    message: format!("{what}: {detail} — restructure, or justify with `// lint: lock-ok — <reason>`"),
                });
            }
        };

        if locks.len() > 1 {
            push(
                locks[1],
                "nested lock acquisition",
                format!("{} lock calls in one statement", locks.len()),
            );
        }
        // Closure-takers applied directly to a lock call's result
        // (`lock().unwrap_or_else(|e| e.into_inner())`) are the sanctioned
        // poison-absorbing idiom: the closure handles the lock `Result`,
        // it does not run user code under the guard. Anything later in the
        // chain does.
        let absorbers: Vec<usize> =
            locks.iter().filter_map(|&l| ctx.close_paren(l + 1).map(|close| close + 2)).collect();
        if let Some(taker) = (first_lock + 1..stmt.end).find(|&j| {
            ctx.kind(j) == TokKind::Ident
                && CLOSURE_TAKERS.contains(&ctx.text(j))
                && ctx.is_punct(j + 1, "(")
                && !absorbers.contains(&j)
        }) {
            push(
                taker,
                "lock guard held across a closure argument",
                format!("`{}` runs its closure while the guard is live", ctx.text(taker)),
            );
        }
        let is_let = stmt.clone().next().is_some_and(|j| ctx.is_ident(j, "let"));
        if is_let {
            if let Some(exit) = (first_lock + 1..stmt.end)
                .find(|&j| ctx.is_punct(j, "?") || ctx.is_ident(j, "return"))
            {
                push(
                    exit,
                    "lock guard bound across an early exit",
                    "`?`/`return` in a `let` statement that acquires a lock".to_string(),
                );
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(src: &str) -> Vec<Finding> {
        let lx = lex(src);
        let ctx = FileCtx::new("cache", "crates/cache/src/lib.rs", &lx, Level::Strict, false);
        scan(&ctx)
    }

    #[test]
    fn flags_nested_lock_in_one_statement() {
        let src = "pub fn f(a: &std::sync::Mutex<u32>, b: &std::sync::Mutex<u32>) -> u32 {\n    *a.lock().unwrap_or_else(|e| e.into_inner()) + *b.lock().unwrap_or_else(|e| e.into_inner())\n}\n";
        let f = run(src);
        assert!(f.iter().any(|f| f.message.contains("nested lock")), "{f:?}");
    }

    #[test]
    fn flags_guard_across_closure_taker() {
        let src = "pub fn f(m: &std::sync::Mutex<std::collections::BTreeMap<u32, u32>>) -> u32 {\n    *m.lock().unwrap().entry(1).or_insert_with(|| expensive())\n}\nfn expensive() -> u32 { 9 }\n";
        let f = run(src);
        assert!(f.iter().any(|f| f.message.contains("closure")), "{f:?}");
    }

    #[test]
    fn flags_guard_bound_across_question_mark() {
        let src = "pub fn f(m: &std::sync::Mutex<u32>) -> Result<u32, Box<dyn std::error::Error + '_>> {\n    let g = m.lock()?;\n    Ok(*g)\n}\n";
        let f = run(src);
        assert!(f.iter().any(|f| f.message.contains("early exit")), "{f:?}");
    }

    #[test]
    fn single_helper_mediated_lock_is_fine() {
        // The cache idiom: poison-absorbing helper, one lock per statement,
        // value computed outside the guard.
        let src = "use std::sync::{Mutex, MutexGuard};\nfn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {\n    match m.lock() {\n        Ok(g) => g,\n        Err(p) => p.into_inner(),\n    }\n}\npub fn get(m: &Mutex<u32>) -> u32 {\n    *lock(m)\n}\n";
        assert!(run(src).is_empty(), "the sanctioned idiom must not fire");
    }

    #[test]
    fn closure_before_lock_is_fine() {
        // `.map(|s| lock(s).len())` — the lock lives *inside* the closure;
        // only lock-then-closure-taker fires.
        let src = "use std::sync::Mutex;\npub fn total(shards: &[Mutex<Vec<u32>>]) -> usize {\n    shards.iter().map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).len()).sum()\n}\n";
        let f = run(src);
        assert!(
            !f.iter().any(|f| f.message.contains("closure")),
            "lock inside a closure is not a guard-across-closure: {f:?}"
        );
    }

    #[test]
    fn lock_ok_marker_with_justification_suppresses() {
        let src = "pub fn f(a: &std::sync::Mutex<u32>, b: &std::sync::Mutex<u32>) -> u32 {\n    // lint: lock-ok — fixed a-then-b order, documented in the module header\n    *a.lock().unwrap_or_else(|e| e.into_inner()) + *b.lock().unwrap_or_else(|e| e.into_inner())\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn non_lock_crates_are_skipped() {
        let src = "pub fn f(m: &std::sync::Mutex<u32>, n: &std::sync::Mutex<u32>) -> u32 { *m.lock().unwrap() + *n.lock().unwrap() }\n";
        let lx = lex(src);
        let ctx = FileCtx::new("poi", "crates/poi/src/lib.rs", &lx, Level::Workspace, false);
        assert!(scan(&ctx).is_empty());
    }
}
