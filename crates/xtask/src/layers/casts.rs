//! L3 — cast hygiene in DP hot paths.
//!
//! `as usize` / `as f64` casts inside the partition/similarity/irregular/
//! select hot paths silently truncate or lose precision; each one needs a
//! `// cast-ok: <reason>` marker on the same or previous line.

use super::{severity_for, FileCtx, Finding};

pub fn scan(ctx: &FileCtx<'_>) -> Vec<Finding> {
    let mut findings = Vec::new();
    if !ctx.hot {
        return findings;
    }
    let severity = severity_for(ctx.level);
    for ci in 0..ctx.code.len() {
        if !ctx.is_ident(ci, "as") {
            continue;
        }
        let line = ctx.line(ci);
        if ctx.in_test(line) {
            continue;
        }
        if ci + 1 >= ctx.code.len() {
            continue;
        }
        let target = ctx.text(ci + 1);
        if matches!(target, "usize" | "f64") && !ctx.has_marker(line, "cast-ok:") {
            findings.push(Finding {
                severity,
                rule: "L3",
                path: ctx.rel.to_string(),
                line,
                message: format!(
                    "lossy `as {target}` in a DP hot path; justify with \
                     `// cast-ok: <reason>` on this or the previous line"
                ),
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Level;
    use crate::lexer::lex;

    fn run(src: &str, hot: bool) -> Vec<Finding> {
        let lx = lex(src);
        let ctx = FileCtx::new("core", "crates/core/src/partition.rs", &lx, Level::Strict, hot);
        scan(&ctx)
    }

    #[test]
    fn flags_unmarked_casts_in_hot_files_only() {
        let src = "pub fn f(n: usize) -> f64 {\n    let x = n as f64;\n    let y = x as usize;\n    // cast-ok: segment count bounded by trajectory length\n    let z = y as f64;\n    x + z\n}\n";
        let f = run(src, true);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|f| f.rule == "L3"));
        assert!(run(src, false).is_empty());
    }

    #[test]
    fn use_as_rename_is_not_a_cast() {
        // `use x as y` has a non-type identifier after `as`; only the
        // usize/f64 targets fire.
        let src = "use std::collections::BTreeMap as Map;\npub fn f(m: &Map<u32, u32>) -> usize { m.len() }\n";
        assert!(run(src, true).is_empty());
    }

    #[test]
    fn marker_inside_string_does_not_suppress() {
        let src = "pub fn f(n: usize) -> f64 {\n    let tag = \"cast-ok: fake\";\n    let _ = tag;\n    n as f64\n}\n";
        let f = run(src, true);
        assert_eq!(f.len(), 1, "{f:?}");
    }
}
