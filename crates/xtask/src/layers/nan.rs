//! L1 — NaN safety (workspace-wide).
//!
//! `partial_cmp(..).unwrap()` / `.expect(..)` panics the moment a NaN
//! reaches a comparison, which in this codebase means a single corrupt GPS
//! sample can abort a whole batch run. Use `f64::total_cmp` or an explicit
//! NaN policy (`unwrap_or(Ordering::..)`), or mark the line with
//! `// nan-ok: <reason>`.

use super::{severity_for, FileCtx, Finding};

pub fn scan(ctx: &FileCtx<'_>) -> Vec<Finding> {
    let mut findings = Vec::new();
    let severity = severity_for(ctx.level);
    for ci in 0..ctx.code.len() {
        if !ctx.is_ident(ci, "partial_cmp") || ci == 0 || !ctx.is_punct(ci - 1, ".") {
            continue;
        }
        let line = ctx.line(ci);
        if ctx.in_test(line) {
            continue;
        }
        if !ctx.is_punct(ci + 1, "(") {
            continue;
        }
        let Some(close) = ctx.close_paren(ci + 1) else { continue };
        if !ctx.is_punct(close + 1, ".") {
            continue;
        }
        let next = close + 2;
        if next >= ctx.code.len() {
            continue;
        }
        let word = ctx.text(next);
        if matches!(word, "unwrap" | "expect") && !ctx.has_marker(line, "nan-ok:") {
            findings.push(Finding {
                severity,
                rule: "L1",
                path: ctx.rel.to_string(),
                line,
                message: format!(
                    "`partial_cmp(..).{word}(..)` panics on NaN; \
                     use `f64::total_cmp` or mark `// nan-ok: <reason>`"
                ),
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Level;
    use crate::lexer::lex;

    fn run(src: &str) -> Vec<Finding> {
        let lx = lex(src);
        let ctx = FileCtx::new("demo", "crates/demo/src/lib.rs", &lx, Level::Workspace, false);
        scan(&ctx)
    }

    #[test]
    fn flags_partial_cmp_unwrap_and_expect() {
        let src = "fn f(v: &mut Vec<f64>) {\n    v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n}\n";
        let f = run(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "L1");
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn flags_multiline_chain_across_comment() {
        // The chain is interrupted by a comment — token adjacency must
        // skip it (the old byte scanner handled whitespace only).
        let src = "fn f(a: f64, b: f64) -> std::cmp::Ordering {\n    a.partial_cmp(&b) /* NaN never */ .expect(\"finite\")\n}\n";
        let f = run(src);
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn accepts_total_cmp_and_explicit_policy() {
        let src = "fn f(v: &mut Vec<f64>) {\n    v.sort_by(|a, b| a.total_cmp(b));\n    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn respects_nan_ok_marker_in_comment_only() {
        let ok = "fn f(a: f64, b: f64) {\n    // nan-ok: inputs validated finite at the API boundary\n    let _ = a.partial_cmp(&b).unwrap();\n}\n";
        assert!(run(ok).is_empty());
        // A marker inside a string on the same line must NOT suppress.
        let bad = "fn f(a: f64, b: f64) {\n    let _ = (a.partial_cmp(&b).unwrap(), \"nan-ok: fake\");\n}\n";
        assert_eq!(run(bad).len(), 1);
    }

    #[test]
    fn skips_cfg_test_items() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t(a: f64, b: f64) { let _ = a.partial_cmp(&b).unwrap(); }\n}\n";
        assert!(run(src).is_empty());
    }
}
