//! L2 — no panics in strict library code.
//!
//! `.unwrap()` / `.expect(..)` / `panic!` / `unreachable!` / `todo!` /
//! `unimplemented!` are forbidden in the non-test library code of the
//! strict crates. Genuine by-construction invariants go in
//! `lint-allowlist.txt` as `L2 | path-suffix | needle | justification`.

use super::{severity_for, FileCtx, Finding, Level};
use crate::allowlist::{Allowlist, ALLOWLIST_FILE};

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

pub fn scan(ctx: &FileCtx<'_>, allow: &Allowlist) -> Vec<Finding> {
    let mut findings = Vec::new();
    if !matches!(ctx.level, Level::Strict | Level::Report) {
        return findings;
    }
    let severity = severity_for(ctx.level);
    for ci in 0..ctx.code.len() {
        let line = ctx.line(ci);
        if ctx.in_test(line) {
            continue;
        }
        let word = ctx.text(ci);
        let message = if matches!(word, "unwrap" | "expect") {
            // Method position only: `.unwrap(` — not `unwrap_or`, which
            // lexes as its own identifier, and not free functions.
            if ci == 0 || !ctx.is_punct(ci - 1, ".") || !ctx.is_punct(ci + 1, "(") {
                continue;
            }
            format!(
                "`.{word}(..)` in non-test library code; return an error \
                 or add a justified entry to {ALLOWLIST_FILE}"
            )
        } else if PANIC_MACROS.contains(&word) {
            if !ctx.is_punct(ci + 1, "!") {
                continue;
            }
            format!(
                "`{word}!` in non-test library code; return an error \
                 or add a justified entry to {ALLOWLIST_FILE}"
            )
        } else {
            continue;
        };
        if allow.allows("L2", ctx.rel, ctx.code_line(line)) {
            continue;
        }
        findings.push(Finding { severity, rule: "L2", path: ctx.rel.to_string(), line, message });
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(src: &str, level: Level) -> Vec<Finding> {
        let lx = lex(src);
        let ctx = FileCtx::new("demo", "crates/demo/src/lib.rs", &lx, level, false);
        scan(&ctx, &Allowlist::default())
    }

    #[test]
    fn flags_unwrap_expect_and_panic_macros_in_strict_code() {
        let src = "pub fn f(x: Option<u32>) -> u32 {\n    let a = x.unwrap();\n    let b = x.expect(\"set\");\n    if a + b > 9 { panic!(\"boom\") }\n    unreachable!()\n}\n";
        let f = run(src, Level::Strict);
        let rules: Vec<&str> = f.iter().map(|f| f.rule).collect();
        assert_eq!(rules, ["L2", "L2", "L2", "L2"], "{f:?}");
        assert!(f.iter().all(|f| f.severity == super::super::Severity::Error));
    }

    #[test]
    fn not_applied_outside_strict_or_report_crates() {
        let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert!(run(src, Level::Workspace).is_empty());
        assert_eq!(run(src, Level::Strict).len(), 1);
        let report = run(src, Level::Report);
        assert_eq!(report.len(), 1);
        assert_eq!(report[0].severity, super::super::Severity::Warning);
    }

    #[test]
    fn ignores_unwrap_or_family_comments_strings_and_raw_strings() {
        let src = "pub fn f(x: Option<u32>) -> u32 {\n    // a comment saying x.unwrap() and panic!()\n    let s = \"x.unwrap() panic!()\";\n    let r = r#\"panic!(\"nested\") .expect(\"q\")\"#;\n    let _ = (s, r);\n    x.unwrap_or_default().max(x.unwrap_or(3))\n}\n";
        assert!(run(src, Level::Strict).is_empty());
    }

    #[test]
    fn allowlist_suppresses_by_layer_with_needle_in_code_not_comments() {
        let src = "pub fn f(x: Option<u32>) -> u32 {\n    x.expect(\"set by constructor\")\n}\n";
        let allow = Allowlist::parse(
            "L2 | crates/demo/src/lib.rs | expect(\"set by constructor\") | constructor invariant",
        )
        .expect("parses");
        let lx = lex(src);
        let ctx = FileCtx::new("demo", "crates/demo/src/lib.rs", &lx, Level::Strict, false);
        assert!(scan(&ctx, &allow).is_empty());
        assert!(allow.unused().is_empty());

        // The same needle appearing only in a trailing comment must NOT
        // suppress: needles match comment-stripped text. (A v1 engine bug:
        // `// expect("set by constructor") is fine here` next to a
        // different panic silently widened the exemption.)
        let src2 = "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap() // expect(\"set by constructor\") is fine here\n}\n";
        let allow2 = Allowlist::parse(
            "L2 | crates/demo/src/lib.rs | expect(\"set by constructor\") | constructor invariant",
        )
        .expect("parses");
        let lx2 = lex(src2);
        let ctx2 = FileCtx::new("demo", "crates/demo/src/lib.rs", &lx2, Level::Strict, false);
        let f = scan(&ctx2, &allow2);
        assert_eq!(f.len(), 1, "comment text must not satisfy an allowlist needle: {f:?}");
    }

    #[test]
    fn skips_cfg_test_items() {
        let src = "pub fn ok() {}\n#[cfg(test)]\nmod tests {\n    fn t() { Some(1).unwrap(); panic!(\"fine\"); }\n}\n";
        assert!(run(src, Level::Strict).is_empty());
    }
}
