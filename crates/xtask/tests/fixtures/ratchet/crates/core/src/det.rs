//! Ratchet fixture: a single L5 finding against an `L5 0` baseline.

use std::collections::HashMap;

pub fn leak(m: &HashMap<u32, u32>) -> Vec<u32> {
    m.iter().map(|(_, v)| *v).collect()
}
