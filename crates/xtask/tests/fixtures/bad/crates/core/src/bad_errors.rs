//! L4 fixture: public error enum with no `Display` / `Error` impls.

pub enum FixtureError {
    Broken,
}
