//! L1 fixture: NaN-unsafe comparator chains (also counted by L2 — the
//! unwraps are panic sites in a strict crate).

pub fn worst(xs: &[f64]) -> f64 {
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[0]
}

pub fn marked(xs: &[f64]) -> f64 {
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap()); // nan-ok: fixture inputs are finite
    v[0]
}
