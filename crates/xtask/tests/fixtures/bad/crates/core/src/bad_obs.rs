//! L7 fixture: one documented name, one schema violation, one drift.

pub fn emit(rec: &Recorder) {
    rec.add("cache.hits", 1);
    rec.add("hits", 1);
    rec.add("cache.unknown_counter", 1);
}
