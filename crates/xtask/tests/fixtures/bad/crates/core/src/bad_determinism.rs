//! L5 fixture: hash-order iteration, `RandomState`, wall-clock reads.

use std::collections::HashMap;
use std::time::Instant;

pub fn leak(m: &HashMap<u32, u32>) -> Vec<u32> {
    m.iter().map(|(_, v)| *v).collect()
}

pub fn fine(m: &HashMap<u32, u32>) -> u32 {
    // lint: ordered — summation is commutative
    m.values().sum()
}

pub fn seeded() -> u64 {
    let s = std::collections::hash_map::RandomState::new();
    let _ = s;
    0
}

pub fn timed() -> std::time::Duration {
    let t0 = Instant::now();
    t0.elapsed()
}
