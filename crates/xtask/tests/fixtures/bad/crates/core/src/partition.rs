//! L3 fixture: this file name matches the DP hot-path list, so unmarked
//! lossy casts are findings here.

pub fn cells(n: u64) -> usize {
    n as usize
}

pub fn ratio(n: u64) -> f64 {
    n as f64 // cast-ok: fixture — u64 → f64 rounding is acceptable here
}
