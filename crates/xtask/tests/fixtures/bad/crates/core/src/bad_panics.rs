//! L2 fixture: panics in strict library code, one allowlisted.

pub fn boom(v: Option<u32>) -> u32 {
    v.expect("fixture: always present")
}

pub fn allowed(v: Option<u32>) -> u32 {
    v.expect("covered by allowlist")
}
