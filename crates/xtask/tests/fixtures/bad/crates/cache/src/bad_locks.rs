//! L6 fixture: nested locks and a guard held across a closure argument;
//! the marked case is suppressed.

use std::collections::BTreeMap;
use std::sync::Mutex;

pub fn nested(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 {
    *a.lock().unwrap_or_else(|e| e.into_inner()) + *b.lock().unwrap_or_else(|e| e.into_inner())
}

pub fn across_closure(m: &Mutex<BTreeMap<u32, u32>>) -> u32 {
    *m.lock().unwrap_or_else(|e| e.into_inner()).entry(1).or_insert_with(|| 9)
}

pub fn marked(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 {
    // lint: lock-ok — fixture: fixed a-then-b acquisition order
    *a.lock().unwrap_or_else(|e| e.into_inner()) + *b.lock().unwrap_or_else(|e| e.into_inner())
}
