pub fn a() -> u32 { 1 }
