pub fn b() -> u32 { 2 }
