//! Integration tests driving the full lint engine over known-bad fixture
//! workspaces under `tests/fixtures/` — each layer must actually fire on
//! real files, suppression paths (markers, allowlist) must hold, and the
//! allowlist/ratchet hygiene rules must behave end to end.

use std::path::{Path, PathBuf};
use stmaker_xtask::engine::{report_to_json, run_lint, validate_report_json, LintOptions};
use stmaker_xtask::layers::Severity;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

fn counts(report: &stmaker_xtask::engine::LintReport, layer: &str) -> (usize, usize) {
    report.layer_counts.get(layer).copied().unwrap_or((0, 0))
}

#[test]
fn every_layer_fires_on_the_bad_fixture() {
    let report = run_lint(&LintOptions { root: fixture("bad"), strict: false }).expect("lint runs");

    // One unmarked partial_cmp chain; the `// nan-ok:` one is suppressed.
    assert_eq!(counts(&report, "L1"), (1, 0), "{:?}", report.findings);
    // Two unwraps in bad_nan.rs plus one expect in bad_panics.rs; the
    // allowlisted expect is suppressed.
    assert_eq!(counts(&report, "L2"), (3, 0), "{:?}", report.findings);
    // One unmarked `as usize` in the hot-path file; `// cast-ok:` suppressed.
    assert_eq!(counts(&report, "L3"), (1, 0), "{:?}", report.findings);
    // `FixtureError` lacks both Display and Error impls.
    let (l4_errors, _) = counts(&report, "L4");
    assert!(l4_errors >= 1, "{:?}", report.findings);
    // Hash iteration + RandomState + Instant::now; `// lint: ordered` suppressed.
    assert_eq!(counts(&report, "L5"), (3, 0), "{:?}", report.findings);
    // Nested locks + guard across closure; `// lint: lock-ok` suppressed.
    assert_eq!(counts(&report, "L6"), (2, 0), "{:?}", report.findings);
    // One schema violation + one undocumented name; `cache.hits` documented.
    assert_eq!(counts(&report, "L7"), (2, 0), "{:?}", report.findings);
    // The committed ratchet matches the fixture exactly: silent.
    assert_eq!(counts(&report, "ratchet"), (0, 0), "{:?}", report.findings);
    assert_eq!(counts(&report, "allowlist"), (0, 0), "{:?}", report.findings);

    assert!(report.errors > 0 && report.warnings == 0, "strict crates report errors only");

    // The machine-readable report round-trips through the schema check.
    let json = report_to_json(&report);
    let summary = validate_report_json(&json).expect("fixture report validates");
    assert!(summary.contains("error(s)"), "{summary}");
}

#[test]
fn bad_fixture_findings_name_their_files() {
    let report = run_lint(&LintOptions { root: fixture("bad"), strict: false }).expect("lint runs");
    let paths_for = |layer: &str| -> Vec<&str> {
        report
            .findings
            .iter()
            .filter(|f| f.rule == layer)
            .map(|f| f.path.as_str())
            .collect::<Vec<_>>()
    };
    assert!(paths_for("L5").iter().all(|p| p.ends_with("bad_determinism.rs")));
    assert!(paths_for("L6").iter().all(|p| p.ends_with("bad_locks.rs")));
    assert!(paths_for("L7").iter().all(|p| p.ends_with("bad_obs.rs")));
    assert!(paths_for("L3").iter().all(|p| p.ends_with("partition.rs")));
}

#[test]
fn ambiguous_suffix_is_an_error_and_unused_entries_warn() {
    let report =
        run_lint(&LintOptions { root: fixture("ambiguous"), strict: false }).expect("lint runs");
    let ambiguous: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == "allowlist" && f.message.contains("ambiguous"))
        .collect();
    assert_eq!(ambiguous.len(), 1, "{:?}", report.findings);
    assert_eq!(ambiguous[0].severity, Severity::Error);
    assert!(
        ambiguous[0].message.contains("crates/a/src/dup.rs")
            && ambiguous[0].message.contains("crates/b/src/dup.rs"),
        "ambiguity error names both matches: {}",
        ambiguous[0].message
    );
    // Both entries never suppressed anything, so both are also unused.
    let unused: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == "allowlist" && f.message.contains("unused"))
        .collect();
    assert_eq!(unused.len(), 2, "{:?}", report.findings);
    assert!(unused.iter().all(|f| f.severity == Severity::Warning));
}

#[test]
fn strict_mode_promotes_unused_entries_to_errors() {
    let report =
        run_lint(&LintOptions { root: fixture("ambiguous"), strict: true }).expect("lint runs");
    let unused: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == "allowlist" && f.message.contains("unused"))
        .collect();
    assert_eq!(unused.len(), 2, "{:?}", report.findings);
    assert!(unused.iter().all(|f| f.severity == Severity::Error));
}

#[test]
fn ratchet_flags_regressions_and_slack() {
    let report =
        run_lint(&LintOptions { root: fixture("ratchet"), strict: false }).expect("lint runs");
    let regression: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == "ratchet" && f.message.contains("regressed"))
        .collect();
    assert_eq!(regression.len(), 1, "{:?}", report.findings);
    assert_eq!(regression[0].severity, Severity::Error);
    assert!(regression[0].message.contains("1 > committed baseline 0"));
    // The stale L6 baseline (1 committed, 0 found) asks to be tightened.
    let slack: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == "ratchet" && f.message.contains("tighten"))
        .collect();
    assert_eq!(slack.len(), 1, "{:?}", report.findings);
    assert_eq!(slack[0].severity, Severity::Warning);
}
